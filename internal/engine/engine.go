// Package engine is BriskStream's shared-memory streaming runtime
// (Section 5 and Appendix A). An application runs inside one process;
// every operator replica is a task executed by its own goroutine (the
// paper uses Java threads), consisting of an executor and a partition
// controller. Tuples are passed by reference: a producer stores its
// output locally and enqueues pointers; accumulated tuples destined for
// the same consumer are combined into a jumbo tuple that shares one
// header and costs a single queue insertion (Section 5.2).
//
// The engine also exposes the knobs the factor analysis (Figure 16)
// needs to emulate a distributed-engine execution path on the same
// topology: per-hop (de)serialization, defensive tuple copies instead of
// reference passing, disabled jumbo tuples, and an artificial extra
// instruction footprint.
//
// # Tuple ownership
//
// The steady-state emit→dispatch→process path allocates nothing: tuples
// come from per-task pools and carry typed slots (no boxing), stream
// routing compares interned integer ids, fields-grouping hashes slots
// inline without a heap hasher, and jumbo batch headers are recycled.
// The ownership contract that makes this safe:
//
//   - Collector.Borrow hands the operator a pooled tuple; Collector.Send
//     (and the Emit/EmitTo convenience paths, which Borrow internally)
//     transfers ownership to the engine.
//   - dispatch counts, before the first enqueue, how many consumers
//     receive the tuple by reference and retains it accordingly, so one
//     tuple fanned out to several routes is recycled only after the last
//     consumer finishes.
//   - After an operator's Process returns, the engine releases the input
//     tuple back to its producer's pool. Operators that keep a tuple
//     beyond Process (windows, joins, side goroutines) must Retain it in
//     Process and Release it later; values read out of a tuple are
//     immutable and never need retaining.
package engine

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/graph"
	"briskstream/internal/metrics"
	"briskstream/internal/numa"
	"briskstream/internal/obs"
	"briskstream/internal/profile"
	"briskstream/internal/queue"
	"briskstream/internal/tuple"
)

// Collector receives the tuples an operator emits during one invocation.
//
// Emit and EmitTo are the convenience surface: they box the variadic
// values into a pooled tuple's typed slots. The allocation-free surface
// is Borrow+Send: Borrow returns a pooled tuple whose slot arrays and
// string arena are reused across emissions, the caller fills fields
// with the typed AppendInt/AppendFloat/AppendBool/AppendStr/AppendSym
// methods (and Stream, for named streams — pre-intern with
// tuple.Intern), and Send transfers ownership back to the engine. After
// Send the caller must not touch the tuple.
type Collector interface {
	// Emit sends values on the default stream.
	Emit(values ...tuple.Value)
	// EmitTo sends values on a named stream. Stream names are interned
	// globally and never evicted, so they must come from the topology's
	// fixed set — never compute a stream name per tuple or per key.
	EmitTo(stream string, values ...tuple.Value)
	// Borrow returns an empty pooled tuple on the default stream, owned
	// by the caller until passed to Send.
	Borrow() *tuple.Tuple
	// Send emits a tuple obtained from Borrow, consuming ownership. The
	// engine stamps the event timestamp; callers only fill Values and
	// Stream.
	Send(t *tuple.Tuple)
	// EmitWatermark broadcasts a low-watermark punctuation to every
	// consumer of the task: a promise that no tuple with Event < wm will
	// follow on any of its streams. Sources drive event time with it
	// (and may pass WatermarkIdle to exclude themselves from downstream
	// fan-in merges while they have no data); the engine min-merges
	// watermarks at fan-in and forwards them automatically, so ordinary
	// operators never call it. Watermarks are monotonic — a regressing
	// value is dropped.
	EmitWatermark(wm int64)
}

// Operator is the processing interface: Process consumes one input tuple
// and emits any number of outputs through the collector. Each replica
// gets its own Operator instance, so implementations may keep
// unsynchronized state.
type Operator interface {
	Process(c Collector, t *tuple.Tuple) error
}

// OperatorFunc adapts a function to Operator.
type OperatorFunc func(c Collector, t *tuple.Tuple) error

// Process implements Operator.
func (f OperatorFunc) Process(c Collector, t *tuple.Tuple) error { return f(c, t) }

// BatchOperator is the vectorized processing interface: an operator
// that also implements ProcessBatch receives whole columnar batches
// (see tuple.Batch) on edges the engine wires columnar, and iterates
// the batch's column vectors in tight per-kind loops instead of being
// invoked once per tuple. The contract mirrors Process:
//
//   - The batch is valid only during the call (it is recycled after);
//     string views read from it die with it.
//   - Outputs go through the collector as usual (Borrow/Send), but the
//     engine does NOT stamp ambient per-invocation metadata during
//     ProcessBatch — emit per-row context explicitly with
//     Batch.StampMeta(row, out) before Send.
//   - Watermarks, barriers and traces never appear inside a batch;
//     punctuations ride between batches exactly as between scalar
//     jumbos, so event-time and checkpoint semantics are unchanged.
//
// Process remains required: it serves the scalar configurations
// (BRISK_BATCH=0, Storm-like modes) and rows the engine must deliver
// individually (traced batches, replays through the row adapter).
type BatchOperator interface {
	Operator
	ProcessBatch(c Collector, b *tuple.Batch) error
}

// BatchGater lets a BatchOperator opt out of columnar delivery at
// wiring time: when WantsBatches reports false the engine keeps the
// operator's input edges scalar (pointer-passing), which is the right
// call when the operator would only run the copying row fallback —
// e.g. a window without vectorized AddRow/Merge hooks. Operators
// without this method get batches whenever they implement
// BatchOperator.
type BatchGater interface {
	WantsBatches() bool
}

// Spout produces input tuples. Next is called in a loop; it emits zero or
// more tuples per call and returns io.EOF when the stream is exhausted.
type Spout interface {
	Next(c Collector) error
}

// SpoutFunc adapts a function to Spout.
type SpoutFunc func(c Collector) error

// Next implements Spout.
func (f SpoutFunc) Next(c Collector) error { return f(c) }

// Config tunes the runtime.
type Config struct {
	// QueueCapacity bounds each task input queue (in queue slots; a
	// slot holds a jumbo tuple). Default 64. The budget is split across
	// the task's per-producer SPSC rings: each of N producers gets
	// QueueCapacity/N slots (minimum 1, rounded up to a power of two),
	// keeping total buffering close to the single-queue semantics.
	QueueCapacity int
	// BatchSize is the jumbo-tuple size: output tuples buffered per
	// consumer before one queue insertion. Default 64. Ignored (forced
	// to 1) when JumboTuples is false.
	BatchSize int
	// LatencySampleEvery stamps every k-th spout tuple with a timestamp
	// for end-to-end latency measurement. Default 64; 0 disables.
	LatencySampleEvery int
	// Linger bounds how long a partial jumbo batch may wait for more
	// tuples before it is flushed anyway: the task's timer service
	// schedules a flush when the batch is started, so low-rate streams
	// see at most Linger of batching delay instead of stranding tuples
	// until shutdown. Default 5ms; 0 disables (flush only when full).
	Linger time.Duration

	// JumboTuples enables batched single-insertion transfers (Section
	// 5.2). Disabling it emulates per-tuple queue insertions.
	JumboTuples bool
	// Columnar carries jumbo batches as columnar tuple.Batch vectors on
	// edges whose consumer implements BatchOperator (and wants them):
	// the producer's dispatch appends emitted tuples into kind-tagged
	// column lanes and the consumer processes the whole batch in one
	// vectorized invocation. Edges with scalar consumers keep
	// pointer-passing. Requires the BriskStream path (PassByReference
	// without Serialize, JumboTuples on); silently inert otherwise.
	// DefaultConfig turns it on unless the BRISK_BATCH environment
	// variable is "0" (how `make race` covers both paths).
	Columnar bool
	// ColumnarAll forces every edge columnar, including edges whose
	// consumer is scalar — those are fed through the engine's
	// row-at-a-time adapter. A debug/test mode: it exercises the
	// adapter and the columnar punctuation ordering on every topology,
	// but pays a copy per row where pointer-passing would do.
	ColumnarAll bool
	// PassByReference passes tuple pointers between tasks. Disabling it
	// clones every tuple at every hop, emulating the defensive copies
	// and duplicate object creation of distributed DSPSs (Section 5.1).
	PassByReference bool
	// Serialize marshals and unmarshals every tuple at every hop,
	// emulating a (de)serialization-based transport.
	Serialize bool
	// ExtraWorkNs busy-spins this many nanoseconds per processed tuple,
	// emulating a larger instruction footprint (condition checking,
	// exception paths) on the critical path.
	ExtraWorkNs int

	// Checkpoint enables aligned-barrier checkpointing: the coordinator
	// tracks each triggered checkpoint and persists it to its store once
	// every task has snapshotted and acked. Nil disables the whole
	// subsystem (no per-tuple cost remains on the data path).
	Checkpoint *checkpoint.Coordinator
	// CheckpointInterval triggers a checkpoint periodically while Run
	// executes. Zero means no automatic triggering — checkpoints then
	// happen only through explicit TriggerCheckpoint calls.
	CheckpointInterval time.Duration
	// AlignTimeout bounds how long a barrier alignment may park input
	// from already-aligned edges while slower edges catch up. When a
	// task's alignment is still incomplete after this much wall time,
	// the task abandons the checkpoint attempt (it will never complete)
	// and replays the parked jumbos, so pathological producer skew
	// cannot park unbounded memory. Zero disables the bound.
	AlignTimeout time.Duration

	// ProfileSampleEvery times every k-th operator invocation (service
	// time and input tuple size) for live profiling; ProfileSnapshot
	// exposes the counters. Default 0 (off — the only data-path cost is
	// one predictable branch per tuple).
	ProfileSampleEvery int
	// TraceSampleEvery stamps every k-th spout tuple with a trace id and
	// origin timestamp; the context propagates input→output like Event,
	// and every hop a traced tuple crosses appends a span record into
	// its task's ring (see RegisterTrace). Default 0 (off — untraced
	// tuples cost one predictable branch at the span site and nothing
	// else).
	TraceSampleEvery int
	// ValidateEvery checks every tuple against its route's declared
	// schema instead of only the first per route — the debug mode the
	// race test suite runs under, catching operators whose layout drifts
	// after their first emit. DefaultConfig turns it on when the
	// BRISK_VALIDATE_EVERY environment variable is non-empty (how `make
	// race`/`make check` enable it suite-wide).
	ValidateEvery bool

	// Machine and RMAScale emulate the NUMA fetch penalty: when a task
	// is placed on a different socket than the producing task, the
	// consumer busy-waits FetchCost(N)*RMAScale nanoseconds per tuple
	// before processing. Zero scale or nil machine disables emulation.
	Machine  *numa.Machine
	RMAScale float64
	// Placement maps "op#replica" labels to sockets. With Machine set it
	// drives the RMA emulation; on platforms with affinity support a
	// placement is also physical — each placed task thread is bound to
	// its socket's CPUs, exactly as if Pin were on.
	Placement map[string]numa.SocketID

	// Pin executes every task goroutine on a locked OS thread bound to
	// its socket's CPU set (sched_setaffinity on Linux; a no-op where
	// unsupported). The socket comes from Placement; without a placement
	// tasks spread round-robin across the host's sockets. Affinity is
	// restored and the thread unlocked when the task exits, so Run stays
	// reusable and threads return clean to the runtime's pool.
	// DefaultConfig turns it on when the BRISK_PIN environment variable
	// is non-empty (how CI's multicore race step enables it suite-wide).
	Pin bool
	// Host is the physical topology Pin binds against and per-socket
	// memory shards by; nil probes it via numa.DetectHost(). Placement
	// sockets beyond the host's range wrap around, so plans computed
	// for the paper's 8-socket servers run anywhere.
	Host *numa.Host
	// RecycleRingCap is the capacity of the per-(producer, consumer)
	// reverse recycling ring: released tuples flow back producer-ward
	// through it so steady-state recycling never crosses sockets via
	// sync.Pool. 0 defaults to 4x BatchSize; negative disables the
	// rings (releases ride sync.Pool as before).
	RecycleRingCap int
	// TrackPools counts every task pool's tuple gets and puts
	// (Engine.PoolStats), the accounting the leak/double-free property
	// tests balance. Off the hot path when false (the default).
	TrackPools bool
}

// validateEveryEnv reads the suite-wide schema debug switch once.
var validateEveryEnv = sync.OnceValue(func() bool {
	return os.Getenv("BRISK_VALIDATE_EVERY") != ""
})

// pinEnv reads the suite-wide thread-pinning switch once.
var pinEnv = sync.OnceValue(func() bool {
	return os.Getenv("BRISK_PIN") != ""
})

// batchEnv reads the suite-wide columnar-batch switch once: on by
// default, BRISK_BATCH=0 falls back to scalar jumbos everywhere.
var batchEnv = sync.OnceValue(func() bool {
	return os.Getenv("BRISK_BATCH") != "0"
})

// DefaultConfig returns the BriskStream-mode configuration.
func DefaultConfig() Config {
	return Config{
		QueueCapacity:      64,
		BatchSize:          64,
		LatencySampleEvery: 64,
		Linger:             5 * time.Millisecond,
		JumboTuples:        true,
		PassByReference:    true,
		Columnar:           batchEnv(),
		ValidateEvery:      validateEveryEnv(),
		Pin:                pinEnv(),
	}
}

// StormLikeConfig returns a configuration that emulates the overhead
// class of a distributed DSPS runtime collapsed onto one machine:
// serialization at every hop, per-tuple queue insertions, defensive
// copies, and a heavier instruction footprint. The queue capacity is
// raised so the buffering budget in tuples matches the default
// configuration (64 slots x 64-tuple jumbos): distributed engines
// buffer at least as much in their transport layers, and a smaller
// buffer would understate their queueing latency.
func StormLikeConfig() Config {
	c := DefaultConfig()
	c.JumboTuples = false
	c.PassByReference = false
	c.Serialize = true
	c.ExtraWorkNs = 500
	c.QueueCapacity = 64 * 64
	return c
}

// Topology binds a logical graph to operator implementations.
type Topology struct {
	App         *graph.Graph
	Spouts      map[string]func() Spout
	Operators   map[string]func() Operator
	Replication map[string]int
	// Schemas declares, per operator and output stream name, the typed
	// layout of the tuples that operator emits on that stream (optional;
	// wired through to routes). The engine validates the first tuple of
	// every declared route against its schema, so a mis-typed emit fails
	// at its source instead of as a kind panic in a downstream consumer.
	Schemas map[string]map[string]*tuple.Schema
}

// Result reports one run.
type Result struct {
	// Duration is the measured wall time.
	Duration time.Duration
	// SinkTuples counts tuples received by sink tasks.
	SinkTuples uint64
	// Throughput is SinkTuples/Duration in tuples/sec.
	Throughput float64
	// Latency is the sampled end-to-end latency distribution (ns).
	Latency *metrics.Histogram
	// Processed counts processed tuples per operator.
	Processed map[string]uint64
	// QueuePuts and QueueGets count jumbo-tuple queue insertions and
	// removals across all task inboxes, read from the queues' atomic
	// counters (Section 5.2's amortization is QueuePuts vs SinkTuples).
	QueuePuts, QueueGets uint64
	// AlignTimeouts counts barrier alignments abandoned because they
	// exceeded Config.AlignTimeout (each one is a dropped checkpoint
	// attempt at that task, never a dropped tuple).
	AlignTimeouts uint64
	// PinnedTasks counts the tasks whose goroutine ran bound to its
	// socket's CPU set this run (0 unless Config.Pin is on and the
	// platform supports thread affinity).
	PinnedTasks int
	// Errors aggregates operator failures (panics are recovered and
	// reported here; the rest of the pipeline is shut down cleanly).
	Errors []error
}

type task struct {
	id       int
	op       string
	replica  int
	label    string
	spout    Spout
	operator Operator
	isSink   bool
	in       *queue.Inbox[*tuple.Jumbo]
	socket   numa.SocketID
	// pinCPUs is the CPU set this task's thread binds to (empty: run
	// unpinned); set at New when Config.Pin is on and supported.
	pinCPUs []int

	// pool recycles this task's output tuples: consumers release each
	// processed tuple back here once every reference is dropped.
	pool *tuple.Pool
	// rev holds, indexed by producer task id, the reverse recycling ring
	// back to that producer's pool (nil for non-producers or when the
	// rings are disabled). Only this task's goroutine feeds a ring (via
	// ReleaseTo after Process); only the producer drains it (in Get).
	rev []*tuple.RecycleRing
	// mbuf is the reusable marshal buffer for the serialization-emulation
	// mode (one per task; tasks are single-goroutine).
	mbuf []byte

	// routing: per logical out-edge, the consumer tasks and partitioning
	routes []route
	// scratch is the reusable destination list dispatch resolves per
	// emitted tuple (tasks are single-goroutine, so one scratch each).
	scratch []dest

	// out is indexed by consumer task id (nil for tasks this one does
	// not feed); outList is the dense list of the same edges for flush
	// and shutdown, so neither path scans all tasks.
	out     []*outEdge
	outList []*outEdge

	// tm is the task's timer service: event-time timers fired by
	// watermark advances, processing-time timers (and the engine's own
	// jumbo linger flushes) fired by the wall clock, all on this task's
	// goroutine.
	tm *Timers
	// wmIn/idleIn track the low watermark (and idleness) last received
	// from each producer task, indexed by producer task id; the task's
	// own watermark is the min over its non-idle producers. prods lists
	// the producer task ids feeding this task.
	wmIn   []int64
	idleIn []bool
	prods  []int

	// Checkpoint state. lastCkpt is the highest checkpoint id this task
	// has handled (sources: injected; operators: aligned and acked).
	// While a barrier alignment is in progress, alignID names the
	// checkpoint, alignSeen (indexed by producer task id) marks the
	// producer edges whose barrier arrived, alignLeft counts the edges
	// still missing, and alignBuf holds the jumbo batches received from
	// already-aligned edges — their data belongs after the snapshot and
	// is replayed once alignment completes.
	lastCkpt  uint64
	alignID   uint64
	alignSeen []bool
	alignLeft int
	alignBuf  []*tuple.Jumbo
	// alignSeq numbers this task's alignment attempts; the align-timeout
	// timer records the attempt it was armed for, so a timer whose
	// alignment already completed (or was superseded) is recognized as
	// stale and skipped.
	alignSeq uint32
	// doneIn marks producer tasks that finished (EOF) and so will never
	// emit another barrier: alignment skips them — the barrier analogue
	// of the watermark path's idle-source exclusion — or a checkpoint
	// triggered after one source of many ended would park the live
	// sources' input forever.
	doneIn []bool

	processed uint64
	// Live-profiling counters (all atomically updated, read by
	// ProfileSnapshot while the task runs). emitted counts output tuples
	// handed to dispatch; serviceNs/serviceSamples/inBytes accumulate
	// the sampled operator invocations (every Config.ProfileSampleEvery
	// input tuples).
	emitted        uint64
	serviceNs      uint64
	serviceSamples uint64
	inBytes        uint64
	// Queue-wait attribution (atomically updated like the profiling
	// counters): cumulative nanoseconds the task's input batches spent
	// in its communication queue, and how many batches that covers. One
	// clock read per jumbo — every tuple's queueing is attributed
	// without any per-tuple cost.
	qwaitNs      uint64
	qwaitBatches uint64
	// spans is this task's trace span ring (nil without RegisterTrace);
	// qwaitWin/svcWin are the rolling queue-wait and service-time
	// windows (nil without RegisterObs). All written before Run starts.
	spans    *obs.TraceRing
	qwaitWin *obs.Window
	svcWin   *obs.Window
	// wmLive mirrors the task's low watermark (tm.wm, task-goroutine
	// private) atomically, so the obs layer can publish per-task
	// watermark lag without touching timer state mid-run. Stored only
	// on watermark advance — rare relative to tuples.
	wmLive int64
}

// outEdge is one (producer, consumer) communication edge: the
// producer's private SPSC ring into the consumer's inbox plus the
// jumbo tuple being accumulated for the next single-slot insertion.
type outEdge struct {
	consumer *task
	ring     *queue.Ring[*tuple.Jumbo]
	jumbo    *tuple.Jumbo
	// idx is this edge's index in the producer's outList (linger-flush
	// timers address edges by it); seq numbers the jumbo batches started
	// on this edge, so a linger timer for a batch that already flushed
	// full is recognized as stale and skipped.
	idx int
	seq uint32
	// columnar marks an edge that carries tuple.Batch payloads: data
	// tuples are appended into batch (the open columnar batch) instead
	// of jumbo; punctuations flush it and ride a scalar jumbo behind
	// it. colFree is the edge's reverse free ring — the consumer parks
	// drained batches, the producer reuses them — so batch memory
	// recycles producer-ward like tuples do.
	columnar bool
	batch    *tuple.Batch
	colFree  *queue.FreeRing[*tuple.Batch]
}

type route struct {
	stream    tuple.StreamID
	part      graph.Partitioning
	keyField  int
	consumers []*task
	rr        int // round-robin cursor for shuffle
	// schema is the declared layout of tuples emitted on this route's
	// stream (nil when undeclared); checked flips after the first tuple
	// is validated, so conformance costs one boolean branch per tuple.
	schema  *tuple.Schema
	checked bool
}

// dest is one resolved delivery of an emitted tuple: the consumer task
// and whether it receives a copy (fan-out) or the tuple pointer itself.
type dest struct {
	c     *task
	clone bool
}

// punctStreamID is the reserved interned stream carrying watermark
// punctuations. The name starts with a NUL byte so it can never collide
// with an application stream; punctuations ride the same per-edge rings
// as data (so they stay ordered relative to it) but are consumed by the
// engine, never delivered to Process or counted as data tuples.
var punctStreamID = tuple.Intern("\x00punctuation")

// barrierStreamID is the reserved interned stream carrying checkpoint
// barriers (Event holds the checkpoint id). Barriers ride the per-edge
// rings exactly like watermark punctuations — in order behind the data
// they follow — which is what makes the aligned snapshot consistent.
var barrierStreamID = tuple.Intern("\x00barrier")

// RouteError reports a tuple that could not be routed by a
// fields-grouping key: the tuple is narrower than the edge's declared
// key field. It is returned through Result.Errors instead of panicking
// inside dispatch.
type RouteError struct {
	Task     string // producing task label, e.g. "split#0"
	Stream   string // output stream of the offending edge
	KeyField int    // declared key field index
	Width    int    // actual number of values in the tuple
}

// Error implements error.
func (e *RouteError) Error() string {
	return fmt.Sprintf("engine: task %s stream %q: fields grouping needs key field %d but tuple has %d values",
		e.Task, e.Stream, e.KeyField, e.Width)
}

// Engine executes one topology. An engine may be Run repeatedly; each
// Run resets the per-run counters and reopens the task queues.
type Engine struct {
	cfg    Config
	topo   Topology
	tasks  []*task
	byOp   map[string][]*task
	stop   atomic.Bool
	sink   metrics.Counter
	lat    *metrics.Histogram
	errs   []error
	errsMu sync.Mutex

	// ptrSend is true when dispatch enqueues the emitted tuple pointer
	// itself (the BriskStream path); cloning/serializing modes always
	// hand consumers a separate object. columnar is the resolved
	// Config.Columnar — true only on the pointer-passing jumbo path,
	// where per-edge batches can be built without defensive copies.
	ptrSend  bool
	columnar bool

	// jumboPools recycle jumbo tuples (header + batch slice with cap =
	// BatchSize) between the producer that fills one and the consumer
	// that drains it, so the steady-state hot path allocates neither
	// headers nor slices per flush. One pool per socket in use, indexed
	// by the acting task's socket, so header memory stays NUMA-local
	// under a placement.
	jumboPools []sync.Pool

	// pinned counts successfully pinned task threads (reset per run,
	// reported in Result.PinnedTasks).
	pinned atomic.Int32

	// coord receives checkpoint acks (nil disables checkpointing);
	// ckptReq is the id of the most recently triggered checkpoint, read
	// by source tasks between Next calls. restoreCp, set by Restore, is
	// applied by the next Run after its reset phase, so restored timers
	// and state are never clobbered by the re-run hygiene.
	coord     *checkpoint.Coordinator
	ckptSeq   atomic.Uint64 // checkpoint id allocator (engine lifetime)
	ckptReq   atomic.Uint64
	restoreCp *checkpoint.Checkpoint

	// alignTimeouts counts alignment attempts abandoned by the
	// AlignTimeout bound (reset per run, reported in Result).
	alignTimeouts atomic.Uint64

	// Live telemetry (all nil/zero without RegisterObs — the hot path
	// then pays one predictable nil check at the sampled-latency site
	// and nothing per tuple). jr receives lifecycle events; obsLat and
	// obsLatHist receive the sampled sink latencies the run's
	// end-of-run histogram already observes; runSeq counts Runs.
	jr         *obs.Journal
	obsLat     *obs.Window
	obsLatHist *obs.Histogram
	runSeq     atomic.Uint64
	// traceSeq allocates trace ids for sampled spout tuples (engine
	// lifetime; id 0 is reserved for "untraced").
	traceSeq atomic.Uint64
}

// New builds an engine for the topology. Replication defaults to 1 per
// operator.
func New(topo Topology, cfg Config) (*Engine, error) {
	if err := topo.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if !cfg.JumboTuples {
		cfg.BatchSize = 1
	}
	e := &Engine{cfg: cfg, topo: topo, byOp: map[string][]*task{}, lat: metrics.NewHistogram(0)}
	e.ptrSend = cfg.PassByReference && !cfg.Serialize
	e.columnar = cfg.Columnar && e.ptrSend && cfg.JumboTuples
	e.coord = cfg.Checkpoint
	if e.coord != nil {
		// Checkpoint ids must keep ascending across engine lifetimes: the
		// coordinator (and its store) outlive the engine, and Begin drops
		// ids at or below the completed floor. Seed the allocator so a
		// recovered run's checkpoints land above everything completed.
		e.ckptSeq.Store(e.coord.LatestID())
		e.ckptReq.Store(e.coord.LatestID())
	}
	for _, n := range topo.App.Nodes() {
		repl := 1
		if topo.Replication != nil && topo.Replication[n.Name] > 0 {
			repl = topo.Replication[n.Name]
		}
		for i := 0; i < repl; i++ {
			t := &task{
				id:      len(e.tasks),
				op:      n.Name,
				replica: i,
				label:   fmt.Sprintf("%s#%d", n.Name, i),
				isSink:  n.IsSink,
				pool:    tuple.NewPool(),
				tm:      NewTimers(),
			}
			if n.IsSpout {
				mk, ok := topo.Spouts[n.Name]
				if !ok {
					return nil, fmt.Errorf("engine: no spout builder for %q", n.Name)
				}
				t.spout = mk()
			} else {
				mk, ok := topo.Operators[n.Name]
				if !ok {
					return nil, fmt.Errorf("engine: no operator builder for %q", n.Name)
				}
				t.operator = mk()
				t.in = queue.NewInbox[*tuple.Jumbo](cfg.QueueCapacity)
			}
			if cfg.Placement != nil {
				t.socket = cfg.Placement[t.label]
			}
			if cfg.TrackPools {
				t.pool.EnableStats()
			}
			e.tasks = append(e.tasks, t)
			e.byOp[n.Name] = append(e.byOp[n.Name], t)
		}
	}

	// Make the placement physical: with Pin on — or any Placement given,
	// since a socket assignment the threads ignore is decorative — every
	// task thread binds to its socket's CPU set. Tasks without a
	// placement spread round-robin over the host sockets, so plain
	// `Pin: true` on a multi-socket box already separates replicas.
	if (cfg.Pin || cfg.Placement != nil) && numa.PinSupported() {
		host := cfg.Host
		if host == nil {
			host = numa.DetectHost()
		}
		if len(host.Sockets) > 0 {
			for _, t := range e.tasks {
				if cfg.Placement == nil {
					t.socket = numa.SocketID(t.id % len(host.Sockets))
				}
				t.pinCPUs = host.CPUsOf(t.socket)
			}
		}
	}

	// Shard the jumbo header pool by socket so batch headers allocate
	// and recycle on the socket of the task touching them. Unplaced
	// topologies collapse to one pool — the previous behaviour.
	nsock := 1
	for _, t := range e.tasks {
		if t.socket < 0 {
			t.socket = 0 // a malformed placement must not break pool indexing
		}
		if s := int(t.socket) + 1; s > nsock {
			nsock = s
		}
	}
	batch := cfg.BatchSize
	e.jumboPools = make([]sync.Pool, nsock)
	for i := range e.jumboPools {
		e.jumboPools[i].New = func() any {
			return &tuple.Jumbo{Tuples: make([]*tuple.Tuple, 0, batch)}
		}
	}

	// QueueCapacity bounds a task's whole input queue, so split it
	// across the task's per-producer rings: with the budget divided, a
	// consumer fed by many producers buffers roughly as much as the old
	// single MPSC queue did (each ring keeps at least one slot, and
	// ring sizes round up to a power of two).
	for _, ct := range e.tasks {
		if ct.in == nil {
			continue
		}
		nprod := 0
		for _, p := range topo.App.Producers(ct.op) {
			nprod += len(e.byOp[p])
		}
		if nprod > 1 {
			ct.in.SetRingCap(cfg.QueueCapacity / nprod)
		}
	}

	// Wire routes and per-edge SPSC rings. One ring per distinct
	// (producer task, consumer task) pair: an operator pair may be
	// connected by several streams, but all of them share the edge's
	// ring, and the producing task closes its rings exactly once. Each
	// edge also gets a reverse recycling ring (consumer → producer's
	// pool) unless disabled.
	revCap := cfg.RecycleRingCap
	if revCap == 0 {
		revCap = 4 * cfg.BatchSize
	}
	for _, n := range topo.App.Nodes() {
		for _, edge := range topo.App.Out(n.Name) {
			consumers := e.byOp[edge.To]
			var schema *tuple.Schema
			if topo.Schemas != nil {
				schema = topo.Schemas[n.Name][edge.Stream]
			}
			for _, pt := range e.byOp[n.Name] {
				pt.routes = append(pt.routes, route{
					stream:    tuple.Intern(edge.Stream),
					part:      edge.Partitioning,
					keyField:  edge.KeyField,
					consumers: consumers,
					schema:    schema,
					// Offset cursors so replicas of one producer start
					// on different consumers; each cursor still visits
					// every consumer uniformly (index before increment).
					rr: pt.replica % max(len(consumers), 1),
				})
				for _, ct := range consumers {
					for len(pt.out) <= ct.id {
						pt.out = append(pt.out, nil)
					}
					if pt.out[ct.id] == nil {
						oe := &outEdge{consumer: ct, ring: ct.in.Bind(), idx: len(pt.outList)}
						if e.columnar {
							// An edge goes columnar when its consumer
							// processes batches vectorized (and has not
							// opted out via BatchGater); ColumnarAll
							// forces it, feeding scalar consumers through
							// the row adapter.
							want := false
							if bop, ok := ct.operator.(BatchOperator); ok {
								want = true
								if g, ok := bop.(BatchGater); ok {
									want = g.WantsBatches()
								}
							}
							if want || cfg.ColumnarAll {
								oe.columnar = true
								oe.colFree = queue.NewFreeRing[*tuple.Batch](max(8, cfg.QueueCapacity))
							}
						}
						pt.out[ct.id] = oe
						pt.outList = append(pt.outList, oe)
						if revCap > 0 {
							for len(ct.rev) <= pt.id {
								ct.rev = append(ct.rev, nil)
							}
							ct.rev[pt.id] = pt.pool.NewRecycleRing(revCap)
						}
					}
				}
			}
		}
	}

	// Watermark plumbing: each consumer task tracks the last watermark
	// per producer task and min-merges across them; the timer service is
	// injected into operators and spouts that ask for it.
	for _, pt := range e.tasks {
		for _, oe := range pt.outList {
			oe.consumer.prods = append(oe.consumer.prods, pt.id)
		}
	}
	for _, t := range e.tasks {
		if t.in != nil {
			t.wmIn = make([]int64, len(e.tasks))
			for i := range t.wmIn {
				t.wmIn[i] = WatermarkMin
			}
			t.idleIn = make([]bool, len(e.tasks))
			t.alignSeen = make([]bool, len(e.tasks))
			t.doneIn = make([]bool, len(e.tasks))
		}
		if ta, ok := t.operator.(TimerAware); ok {
			ta.SetTimers(t.tm)
		}
		if ta, ok := t.spout.(TimerAware); ok {
			ta.SetTimers(t.tm)
		}
		if e.coord != nil {
			// Fail configuration errors at build time: an operator that
			// cannot snapshot (e.g. a window without Save/Load codecs)
			// must not surface as a mid-run abort at the first barrier.
			for _, member := range []any{t.operator, t.spout} {
				if v, ok := member.(checkpoint.Validator); ok {
					if err := v.ValidateSnapshot(); err != nil {
						return nil, fmt.Errorf("engine: task %s cannot checkpoint: %w", t.label, err)
					}
				}
			}
		}
	}
	return e, nil
}

// ErrStopped is returned by collectors after the engine begins shutdown.
var ErrStopped = errors.New("engine: stopped")

// collector implements Collector for one task.
type collector struct {
	e        *Engine
	t        *task
	seq      uint64
	pseq     uint64    // input-tuple counter driving profile sampling
	tseq     uint64    // spout output counter driving trace sampling
	curTs    time.Time // latency timestamp of the input tuple being processed
	curEvent int64     // event time of the input tuple (or the advancing watermark)
	// curTrace/curOrigin carry the trace context of the input tuple
	// being processed, so derived output tuples stay on the trace.
	curTrace  uint64
	curOrigin int64
	// inBatch is true while the task is inside a vectorized
	// ProcessBatch invocation: ambient per-invocation stamping is
	// suspended (there is no single "current input"), and the operator
	// stamps per-row context itself via Batch.StampMeta.
	inBatch bool
	fail    error

	// lastName/lastID memoize the EmitTo compat path's stream-name
	// resolution: operators overwhelmingly emit on one stream, so the
	// common case is a pointer-equal string compare, not a map lookup.
	lastName string
	lastID   tuple.StreamID
}

// Emit implements Collector.
func (c *collector) Emit(values ...tuple.Value) {
	if c.fail != nil {
		return
	}
	out := c.t.pool.Get()
	for _, v := range values {
		out.Append(v)
	}
	c.Send(out)
}

// EmitTo implements Collector.
func (c *collector) EmitTo(stream string, values ...tuple.Value) {
	if c.fail != nil {
		return
	}
	out := c.t.pool.Get()
	out.Stream = c.streamID(stream)
	for _, v := range values {
		out.Append(v)
	}
	c.Send(out)
}

// Borrow implements Collector.
func (c *collector) Borrow() *tuple.Tuple { return c.t.pool.Get() }

// Send implements Collector: it stamps the event time and hands the
// tuple (with the caller's reference) to dispatch.
func (c *collector) Send(out *tuple.Tuple) {
	if c.fail != nil {
		out.Release()
		return
	}
	if c.t.spout != nil {
		// Source tasks count emitted tuples (not Next invocations — a
		// throttled or idle source returning without emitting produced
		// nothing, and rate metrics divide by this counter).
		atomic.AddUint64(&c.t.processed, 1)
		atomic.AddUint64(&c.t.emitted, 1)
		// Latency sampling: spouts stamp every k-th tuple.
		if c.e.cfg.LatencySampleEvery > 0 {
			c.seq++
			if c.seq%uint64(c.e.cfg.LatencySampleEvery) == 0 {
				out.Ts = time.Now()
			}
		}
		// Trace sampling: every k-th spout tuple starts a trace — a
		// fresh id, an origin timestamp, and a source span in this
		// task's ring. Off (the default) this is one predictable branch.
		if c.e.cfg.TraceSampleEvery > 0 && c.t.spans != nil {
			c.tseq++
			if c.tseq%uint64(c.e.cfg.TraceSampleEvery) == 0 {
				out.TraceID = c.e.traceSeq.Add(1)
				out.TraceOrigin = time.Now().UnixNano()
				c.t.spans.Append(obs.Span{
					TraceID:  out.TraceID,
					OriginNs: out.TraceOrigin,
					AtNs:     out.TraceOrigin,
					Emitted:  1,
					Kind:     obs.SpanSource,
				})
			}
		}
	} else {
		atomic.AddUint64(&c.t.emitted, 1)
		// The latency timestamp propagates downstream so sinks can
		// measure end-to-end latency; the event timestamp propagates
		// input→output unless the operator assigned its own (windows
		// stamp aggregates with the window end, for example); the trace
		// context always propagates (operators never stamp their own).
		// During a vectorized ProcessBatch there is no single current
		// input — batch operators stamp per-row context themselves via
		// Batch.StampMeta, and the ambient stamp would smear one row's
		// context over the whole batch's outputs.
		if !c.inBatch {
			out.Ts = c.curTs
			if out.Event == 0 {
				out.Event = c.curEvent
			}
			out.TraceID = c.curTrace
			out.TraceOrigin = c.curOrigin
		}
	}
	if err := c.e.dispatch(c.t, out); err != nil {
		c.fail = err
	}
}

// ForwardRows re-emits rows of an input batch on the given stream: a
// nil sel forwards every row, otherwise the selected rows in selection
// order. Each row routes exactly as if its materialized tuple had been
// Sent — same partitioning (hashes read straight from the batch
// column), same per-row metadata — but when every route on the stream
// has settled schema validation and feeds only columnar edges, rows
// land via a direct column-to-column copy into the open downstream
// batches, skipping the Borrow/CopyRowTo/Send/Append round trip that
// would otherwise rebuild each pass-through row from lanes into a
// pooled tuple and straight back into lanes. Anything that needs a
// real tuple (scalar or still-validating routes, serialize mode, spout
// tasks) falls back to per-row materialization with identical
// semantics.
func (c *collector) ForwardRows(b *tuple.Batch, sel []int32, stream tuple.StreamID) {
	if c.fail != nil || b == nil {
		return
	}
	n := b.Len()
	if sel != nil {
		n = len(sel)
	}
	if n == 0 {
		return
	}
	t, e := c.t, c.e
	fast := t.spout == nil && !e.cfg.Serialize
	if fast {
	scan:
		for ri := range t.routes {
			r := &t.routes[ri]
			if r.stream != stream {
				continue
			}
			if r.schema != nil && (!r.checked || e.cfg.ValidateEvery) {
				fast = false
				break
			}
			for _, cons := range r.consumers {
				if !t.out[cons.id].columnar {
					fast = false
					break scan
				}
			}
		}
	}
	if !fast {
		// Materialize per row; Send handles routing, counters, and (on
		// the first tuples of a declared route) schema validation —
		// which flips the route to checked, re-opening the fast path.
		for i := 0; i < n; i++ {
			r := i
			if sel != nil {
				r = int(sel[i])
			}
			out := c.Borrow()
			b.CopyRowTo(r, out)
			out.Stream = stream
			c.Send(out)
		}
		return
	}
	for i := 0; i < n; i++ {
		row := i
		if sel != nil {
			row = int(sel[i])
		}
		for ri := range t.routes {
			rt := &t.routes[ri]
			if rt.stream != stream {
				continue
			}
			var dst *task
			switch rt.part {
			case graph.Broadcast:
				for _, cons := range rt.consumers {
					if err := e.forwardRowColumnar(t, t.out[cons.id], b, row, stream); err != nil {
						c.fail = err
						return
					}
				}
				continue
			case graph.Global:
				dst = rt.consumers[0]
			case graph.Fields:
				if rt.keyField < 0 || rt.keyField >= b.Cols() {
					c.fail = &RouteError{Task: t.label, Stream: rt.stream.String(), KeyField: rt.keyField, Width: b.Cols()}
					return
				}
				dst = rt.consumers[int(b.Hash(rt.keyField, row)%uint64(len(rt.consumers)))]
			default: // Shuffle
				idx := rt.rr
				if rt.rr++; rt.rr == len(rt.consumers) {
					rt.rr = 0
				}
				dst = rt.consumers[idx]
			}
			if err := e.forwardRowColumnar(t, t.out[dst.id], b, row, stream); err != nil {
				c.fail = err
				return
			}
		}
	}
	atomic.AddUint64(&t.emitted, uint64(n))
}

// EmitWatermark implements Collector: it broadcasts a punctuation to
// every consumer of this task and flushes the pending output batches so
// event time is never stuck behind batching.
func (c *collector) EmitWatermark(wm int64) {
	if c.fail != nil {
		return
	}
	if wm == WatermarkIdle {
		if err := c.e.broadcastPunct(c.t, punctStreamID, WatermarkIdle, time.Time{}); err != nil {
			c.fail = err
		}
		return
	}
	if wm <= c.t.tm.wm {
		return // watermarks are monotonic
	}
	// Advance the emitting task's own event wheel first: a source that
	// registered event timers (TimerAware spouts) gets its OnTimer
	// callbacks here, since no punctuation ever flows INTO a source.
	var h TimerHandler
	if c.t.spout != nil {
		h, _ = c.t.spout.(TimerHandler)
	} else {
		h, _ = c.t.operator.(TimerHandler)
	}
	if err := c.t.tm.AdvanceWatermark(wm, func(at int64) error {
		if h == nil {
			return nil
		}
		return h.OnTimer(c, EventTimer, at)
	}); err != nil {
		c.fail = err
		return
	}
	atomic.StoreInt64(&c.t.wmLive, wm)
	// Punctuations are rare, so every one carries a latency timestamp:
	// it rides through to window aggregates fired by this watermark,
	// keeping end-to-end latency observable on windowed paths.
	var ts time.Time
	if c.e.cfg.LatencySampleEvery > 0 {
		ts = time.Now()
	}
	if err := c.e.broadcastPunct(c.t, punctStreamID, wm, ts); err != nil {
		c.fail = err
	}
}

func (c *collector) streamID(stream string) tuple.StreamID {
	// The memo's zero value is ("", DefaultStreamID); require a
	// non-empty hit so EmitTo("") interns like every other name instead
	// of silently resolving to the default stream.
	if stream == c.lastName && stream != "" {
		return c.lastID
	}
	id := tuple.Intern(stream)
	c.lastName, c.lastID = stream, id
	return id
}

// dispatch routes one output tuple through the task's partition
// controller into per-consumer buffers, flushing full jumbo tuples. It
// consumes the caller's reference: the tuple is handed to its
// consumer(s), or released back to the producer's pool if nothing
// subscribes to its stream.
//
// It runs in two phases so recycling needs no atomic read-modify-write
// in the common single-consumer case. Phase 1 resolves every
// destination — all reads of the tuple (stream id, key fields) happen
// here, before any consumer can see it. Phase 2 enqueues copies first
// (fan-out and defensive copies read the tuple), then the pointer
// sends, which only move the pointer: the caller's reference transfers
// with the last pointer send, extra pointer shares are retained before
// the first, and after the final send dispatch never touches the tuple
// again — so a fast consumer's release can never recycle it
// mid-dispatch.
func (e *Engine) dispatch(t *task, out *tuple.Tuple) error {
	dests := t.scratch[:0]
	for ri := range t.routes {
		r := &t.routes[ri]
		if r.stream != out.Stream {
			continue
		}
		if r.schema != nil && (!r.checked || e.cfg.ValidateEvery) {
			// First tuple on a declared route: validate the slot layout
			// against the wiring-time schema, then trust the operator
			// (every tuple when the ValidateEvery debug mode is on).
			r.checked = true
			if err := r.schema.Check(out); err != nil {
				t.scratch = dests[:0]
				out.Release()
				return fmt.Errorf("engine: task %s stream %q: %w", t.label, r.stream.String(), err)
			}
		}
		switch r.part {
		case graph.Broadcast:
			fan := len(r.consumers) > 1
			for _, c := range r.consumers {
				dests = append(dests, dest{c, fan})
			}
		case graph.Global:
			dests = append(dests, dest{r.consumers[0], false})
		case graph.Fields:
			if r.keyField < 0 || r.keyField >= out.Len() {
				t.scratch = dests[:0]
				err := &RouteError{Task: t.label, Stream: r.stream.String(), KeyField: r.keyField, Width: out.Len()}
				out.Release() // nothing enqueued yet; the caller's reference ends here
				return err
			}
			idx := int(out.Hash(r.keyField) % uint64(len(r.consumers)))
			dests = append(dests, dest{r.consumers[idx], false})
		default: // Shuffle
			idx := r.rr
			if r.rr++; r.rr == len(r.consumers) {
				r.rr = 0
			}
			dests = append(dests, dest{r.consumers[idx], false})
		}
	}
	t.scratch = dests

	shares := 0
	for _, d := range dests {
		if e.ptrSend && !d.clone {
			shares++ // pointer sends go in the second pass
			continue
		}
		if err := e.buffer(t, d.c, out, d.clone); err != nil {
			out.Release() // not yet pointer-enqueued; drop the caller's reference
			return err
		}
	}
	if shares == 0 {
		out.Release()
		return nil
	}
	out.RetainN(shares - 1)
	for _, d := range dests {
		if d.clone {
			continue
		}
		if err := e.buffer(t, d.c, out, false); err != nil {
			// Consumers already holding the tuple release their own
			// references, and the failing send released the reference it
			// carried; drop the remaining undelivered shares so the
			// tuple still recycles (shutdown/abort path).
			for shares--; shares > 0; shares-- {
				out.Release()
			}
			return err
		}
		shares--
	}
	return nil
}

// buffer appends a tuple to the producer's per-consumer jumbo under
// construction and flushes it when full.
func (e *Engine) buffer(t *task, consumer *task, out *tuple.Tuple, copyForFanout bool) error {
	msg := out
	if copyForFanout || !e.cfg.PassByReference {
		// Defensive/fan-out copy into a pooled tuple from the producer's
		// pool; the consumer releases it like any other input.
		msg = t.pool.Get()
		msg.CopyFrom(out)
	}
	if e.cfg.Serialize {
		// Emulate a serialization transport: marshal + unmarshal per
		// tuple, preserving the timestamp for latency accounting.
		t.mbuf = tuple.Marshal(msg, t.mbuf[:0])
		decoded, _, err := tuple.Unmarshal(t.mbuf)
		if msg != out {
			msg.Release()
		}
		if err != nil {
			return err
		}
		msg = decoded
	}
	oe := t.out[consumer.id]
	if oe.columnar {
		if msg.Stream != punctStreamID && msg.Stream != barrierStreamID {
			return e.bufferColumnar(t, oe, msg)
		}
		// Punctuation on a columnar edge: it must stay ordered behind
		// the data it follows, so flush the open batch first; the
		// punctuation itself rides a scalar jumbo (batches never carry
		// watermarks or barriers).
		if oe.batch != nil && oe.batch.Len() > 0 {
			if err := e.flushBatch(t, oe); err != nil {
				msg.Release()
				return err
			}
		}
	}
	if oe.jumbo == nil {
		oe.jumbo = e.getJumbo(t)
		oe.seq++
		if e.cfg.Linger > 0 {
			// Bound how long this fresh batch may stay partial. The
			// timer addresses (edge, seq); if the batch flushes full
			// first, the fire finds a newer seq and skips.
			t.tm.registerLinger(oe.idx, oe.seq, time.Now().Add(e.cfg.Linger))
		}
	}
	oe.jumbo.Tuples = append(oe.jumbo.Tuples, msg)
	if len(oe.jumbo.Tuples) >= e.cfg.BatchSize {
		j := oe.jumbo
		oe.jumbo = nil
		return e.send(t, oe, j)
	}
	return nil
}

// bufferColumnar appends one data tuple into the edge's open columnar
// batch, starting (and linger-arming) a fresh batch as needed and
// flushing at BatchSize or on a layout change. The payload is copied
// into the batch's column lanes and the tuple's reference ends here —
// on the producer's own goroutine, so the release hits the same-core
// pool fast path instead of crossing sockets.
func (e *Engine) bufferColumnar(t *task, oe *outEdge, msg *tuple.Tuple) error {
	if oe.batch != nil && !oe.batch.Fits(msg) {
		if err := e.flushBatch(t, oe); err != nil {
			msg.ReleaseLocal()
			return err
		}
	}
	if oe.batch == nil {
		oe.batch = e.getBatch(oe)
		oe.seq++
		if e.cfg.Linger > 0 {
			t.tm.registerLinger(oe.idx, oe.seq, time.Now().Add(e.cfg.Linger))
		}
	}
	oe.batch.Append(msg)
	msg.ReleaseLocal()
	if oe.batch.Len() >= e.cfg.BatchSize {
		return e.flushBatch(t, oe)
	}
	return nil
}

// forwardRowColumnar lands one forwarded batch row on a columnar edge
// — the column-to-column twin of bufferColumnar: flush on a layout
// change, open (and linger-arm) a fresh batch as needed, copy the
// row's lanes across, flush at BatchSize.
func (e *Engine) forwardRowColumnar(t *task, oe *outEdge, src *tuple.Batch, r int, stream tuple.StreamID) error {
	if oe.batch != nil && !oe.batch.FitsRowFrom(src, stream) {
		if err := e.flushBatch(t, oe); err != nil {
			return err
		}
	}
	if oe.batch == nil {
		oe.batch = e.getBatch(oe)
		oe.seq++
		if e.cfg.Linger > 0 {
			t.tm.registerLinger(oe.idx, oe.seq, time.Now().Add(e.cfg.Linger))
		}
	}
	oe.batch.AppendRowFrom(src, r, stream)
	if oe.batch.Len() >= e.cfg.BatchSize {
		return e.flushBatch(t, oe)
	}
	return nil
}

// getBatch takes a recycled batch from the edge's reverse free ring,
// allocating a fresh one only while the ring warms up.
func (e *Engine) getBatch(oe *outEdge) *tuple.Batch {
	if b, ok := oe.colFree.TryGet(); ok {
		return b
	}
	return tuple.NewBatch(e.cfg.BatchSize)
}

// flushBatch wraps the edge's open columnar batch in a jumbo header
// and enqueues it.
func (e *Engine) flushBatch(t *task, oe *outEdge) error {
	b := oe.batch
	oe.batch = nil
	j := e.getJumbo(t)
	j.Batch = b
	return e.send(t, oe, j)
}

func (e *Engine) send(t *task, oe *outEdge, j *tuple.Jumbo) error {
	j.Producer, j.Consumer = t.id, oe.consumer.id
	// Queue-wait attribution: stamp the batch once at enqueue; the
	// consumer diffs at dequeue. One clock read per jumbo, zero
	// per-tuple cost.
	j.EnqNs = time.Now().UnixNano()
	if err := oe.ring.Put(j); err != nil {
		// The batch was never enqueued (ring closed during shutdown):
		// nobody downstream will ever see these tuples, so their
		// references end here — a killed run must not strand pooled
		// tuples (the leak-accounting property tests balance on this).
		// A columnar payload carries copies, not references; dropping
		// it to the GC strands nothing.
		for _, in := range j.Tuples {
			in.Release()
		}
		e.recycleJumbo(t, j)
		return ErrStopped
	}
	return nil
}

// broadcastPunct sends an engine punctuation (a watermark on
// punctStreamID, or a checkpoint barrier on barrierStreamID) to every
// consumer of the task — punctuations ignore stream subscriptions and
// partitioning: every replica of every consumer must see every
// watermark for the fan-in min-merge to be sound, and every barrier for
// the alignment to cover all producer edges. The punctuation is
// appended behind whatever data is already buffered per edge
// (preserving order) and every edge is flushed, so neither event time
// nor a checkpoint is ever delayed by batching.
func (e *Engine) broadcastPunct(t *task, stream tuple.StreamID, ev int64, ts time.Time) error {
	if len(t.outList) == 0 {
		return nil
	}
	p := t.pool.Get()
	p.Stream = stream
	p.Event = ev
	p.Ts = ts
	if e.ptrSend {
		// Same single-retain discipline as dispatch fan-out: all
		// references exist before the first enqueue, so a fast consumer
		// can never recycle the punctuation mid-broadcast.
		remaining := len(t.outList)
		p.RetainN(remaining - 1)
		for _, oe := range t.outList {
			if err := e.buffer(t, oe.consumer, p, false); err != nil {
				// The failing send released the share it carried; drop
				// only the undelivered remainder.
				for remaining--; remaining > 0; remaining-- {
					p.Release()
				}
				return err
			}
			remaining--
		}
	} else {
		// Clone/serialize modes: buffer copies, the original stays ours.
		for _, oe := range t.outList {
			if err := e.buffer(t, oe.consumer, p, false); err != nil {
				p.Release()
				return err
			}
		}
		p.Release()
	}
	e.flushAll(t)
	return nil
}

// handlePunct processes one received watermark punctuation: record the
// producer's watermark, min-merge across all non-idle producers, and on
// advance fire due event timers, notify the operator, and forward the
// merged watermark downstream. Returns the first handler error.
func (e *Engine) handlePunct(t *task, c *collector, in *tuple.Tuple, producer int) error {
	wm := in.Event
	if wm == WatermarkIdle {
		t.idleIn[producer] = true
	} else {
		t.idleIn[producer] = false
		if wm > t.wmIn[producer] {
			t.wmIn[producer] = wm
		}
	}
	merged := int64(WatermarkIdle)
	for _, p := range t.prods {
		if t.idleIn[p] {
			continue
		}
		if t.wmIn[p] < merged {
			merged = t.wmIn[p]
		}
	}
	if merged == WatermarkIdle {
		// Every input is idle: propagate idleness (once) so downstream
		// fan-ins exclude this whole subgraph too. The watermark itself
		// does not advance — idleness is not event-time progress.
		if t.tm.idle {
			return nil
		}
		t.tm.idle = true
		return e.broadcastPunct(t, punctStreamID, WatermarkIdle, in.Ts)
	}
	t.tm.idle = false
	if merged <= t.tm.wm {
		return nil // not an advance (some producer still lags)
	}
	c.curTs, c.curEvent = in.Ts, merged
	var th TimerHandler
	if t.operator != nil {
		th, _ = t.operator.(TimerHandler)
	}
	if err := t.tm.AdvanceWatermark(merged, func(at int64) error {
		if th == nil {
			return nil
		}
		return th.OnTimer(c, EventTimer, at)
	}); err != nil {
		return err
	}
	atomic.StoreInt64(&t.wmLive, merged)
	if wh, ok := t.operator.(WatermarkHandler); ok {
		if err := wh.OnWatermark(c, merged); err != nil {
			return err
		}
	}
	if c.fail != nil {
		return c.fail
	}
	return e.broadcastPunct(t, punctStreamID, merged, in.Ts)
}

// fireProcTimers advances the task's processing-time wheel to now:
// linger timers flush their partial jumbo batch (if it is still the
// batch they were armed for), operator/spout timers get OnTimer.
func (e *Engine) fireProcTimers(t *task, c *collector) error {
	var h TimerHandler
	if t.operator != nil {
		h, _ = t.operator.(TimerHandler)
	} else if t.spout != nil {
		h, _ = t.spout.(TimerHandler)
	}
	err := t.tm.fireProcDue(time.Now(), func(en wheelEntry) error {
		if en.edge >= 0 {
			oe := t.outList[en.edge]
			if oe.seq == en.seq && oe.jumbo != nil && len(oe.jumbo.Tuples) > 0 {
				j := oe.jumbo
				oe.jumbo = nil
				return e.send(t, oe, j)
			}
			if oe.seq == en.seq && oe.batch != nil && oe.batch.Len() > 0 {
				return e.flushBatch(t, oe)
			}
			return nil
		}
		if en.edge == alignTimeoutEdge {
			return e.alignTimedOut(t, c, en.seq)
		}
		if h == nil {
			return nil
		}
		return h.OnTimer(c, ProcTimer, en.at)
	})
	if err != nil {
		return err
	}
	return c.fail
}

// getJumbo takes a fresh jumbo header from the acting task's socket
// pool.
func (e *Engine) getJumbo(t *task) *tuple.Jumbo {
	return e.jumboPools[int(t.socket)%len(e.jumboPools)].Get().(*tuple.Jumbo)
}

// recycleJumbo returns a drained jumbo to the acting task's socket
// pool. Slots are cleared first so the pool does not pin consumed
// tuples.
func (e *Engine) recycleJumbo(t *task, j *tuple.Jumbo) {
	j.Batch = nil // a columnar payload is recycled separately (or GC'd)
	if cap(j.Tuples) != e.cfg.BatchSize {
		return // foreign or resized batch; let the GC take it
	}
	clear(j.Tuples)
	j.Tuples = j.Tuples[:0]
	e.jumboPools[int(t.socket)%len(e.jumboPools)].Put(j)
}

// flushAll flushes all pending buffers of a task.
func (e *Engine) flushAll(t *task) {
	for _, oe := range t.outList {
		if oe.batch != nil && oe.batch.Len() > 0 {
			_ = e.flushBatch(t, oe)
		}
		if oe.jumbo == nil || len(oe.jumbo.Tuples) == 0 {
			continue
		}
		j := oe.jumbo
		oe.jumbo = nil
		_ = e.send(t, oe, j)
	}
}

// Run executes the topology until every spout returns io.EOF, or for at
// most d if d > 0 (duration-bound measurement runs). It returns the run
// metrics; operator errors are collected in Result.Errors.
//
// Run may be called repeatedly on the same engine (not concurrently):
// each call resets the sink/latency/processed counters, the timer
// wheels, the watermark cursors, the checkpoint alignment state and the
// shuffle round-robin cursors, and reopens the task queues the previous
// run closed, so results never double-count and a recovery restart
// observes no residue of the failed run. Operator and spout instances
// persist across runs and keep their state — unless a Restore is
// pending, in which case every task is rebuilt from the restored
// checkpoint after the reset (and sources are sought back to their
// recorded offsets) before any task goroutine starts.
func (e *Engine) Run(d time.Duration) (*Result, error) {
	start := time.Now()
	var wg sync.WaitGroup
	e.stop.Store(false)
	e.sink.Reset()
	e.lat = metrics.NewHistogram(0)
	e.errs = nil
	e.alignTimeouts.Store(0)
	e.pinned.Store(0)
	// A checkpoint requested while no run executes (or left over from a
	// killed run) must not fire mid-restart: tasks treat everything up
	// to the current request id as already handled.
	req := e.ckptReq.Load()
	for _, t := range e.tasks {
		atomic.StoreUint64(&t.processed, 0)
		atomic.StoreUint64(&t.emitted, 0)
		atomic.StoreUint64(&t.serviceNs, 0)
		atomic.StoreUint64(&t.serviceSamples, 0)
		atomic.StoreUint64(&t.inBytes, 0)
		atomic.StoreUint64(&t.qwaitNs, 0)
		atomic.StoreUint64(&t.qwaitBatches, 0)
		t.tm.reset()
		atomic.StoreInt64(&t.wmLive, WatermarkMin)
		for i := range t.wmIn {
			t.wmIn[i] = WatermarkMin
			t.idleIn[i] = false
		}
		t.lastCkpt = req
		t.alignID = 0
		t.alignLeft = 0
		clear(t.alignSeen)
		clear(t.doneIn)
		for _, j := range t.alignBuf {
			// Jumbos buffered mid-alignment by a killed run: the tuples
			// go back to their producers' pools, the batch to the GC.
			for _, in := range j.Tuples {
				in.Release()
			}
		}
		t.alignBuf = nil
		for ri := range t.routes {
			// Shuffle cursors restart at the replica-offset phase New
			// chose, so a re-run (and in particular a recovery replay)
			// distributes tuples exactly like a fresh engine would.
			r := &t.routes[ri]
			r.rr = t.replica % max(len(r.consumers), 1)
		}
		if t.in != nil {
			// Jumbos stranded in a killed run's rings: release their
			// tuples before reopening discards the batch, so a dropped
			// run leaves no pooled tuple unaccounted.
			for {
				j, ok, _ := t.in.TryGet()
				if !ok {
					break
				}
				for _, in := range j.Tuples {
					in.Release()
				}
				e.recycleJumbo(t, j)
			}
			t.in.Reopen()
		}
	}
	if e.coord != nil {
		e.coord.Abandon() // in-flight checkpoints of a previous run are dead
	}
	if cp := e.restoreCp; cp != nil {
		e.restoreCp = nil
		if err := e.applyRestore(cp); err != nil {
			return nil, err
		}
	}
	// Queue cursors are cumulative across runs; report per-run deltas.
	puts0, gets0 := e.QueueStats()

	run := e.runSeq.Add(1)
	e.event("run_start", "", map[string]string{
		"run":   strconv.FormatUint(run, 10),
		"tasks": strconv.Itoa(len(e.tasks)),
	})

	for _, t := range e.tasks {
		wg.Add(1)
		go func(t *task) {
			defer wg.Done()
			e.runTask(t)
		}(t)
	}

	var ckptDone chan struct{}
	if e.coord != nil && e.cfg.CheckpointInterval > 0 {
		ckptDone = make(chan struct{})
		go func() {
			tk := time.NewTicker(e.cfg.CheckpointInterval)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					e.TriggerCheckpoint()
				case <-ckptDone:
					return
				}
			}
		}()
	}

	if d > 0 {
		timer := time.AfterFunc(d, func() { e.stop.Store(true) })
		defer timer.Stop()
	}
	wg.Wait()
	if ckptDone != nil {
		close(ckptDone)
	}
	elapsed := time.Since(start)

	res := &Result{
		Duration:      elapsed,
		SinkTuples:    e.sink.Value(),
		Latency:       e.lat,
		Processed:     map[string]uint64{},
		Errors:        e.errs,
		AlignTimeouts: e.alignTimeouts.Load(),
		PinnedTasks:   int(e.pinned.Load()),
	}
	if elapsed > 0 {
		res.Throughput = float64(res.SinkTuples) / elapsed.Seconds()
	}
	for _, t := range e.tasks {
		res.Processed[t.op] += atomic.LoadUint64(&t.processed)
	}
	puts, gets := e.QueueStats()
	res.QueuePuts, res.QueueGets = puts-puts0, gets-gets0
	e.event("run_stop", "", map[string]string{
		"run":         strconv.FormatUint(run, 10),
		"duration_ms": strconv.FormatInt(elapsed.Milliseconds(), 10),
		"sink_tuples": strconv.FormatUint(res.SinkTuples, 10),
		"errors":      strconv.Itoa(len(res.Errors)),
	})
	return res, nil
}

// QueueStats returns the cumulative jumbo-tuple queue insertions and
// removals across all task inboxes. It reads atomic counters, so it is
// safe to call while the engine runs (the metrics layer polls it the
// same way Snapshot is polled for rates).
func (e *Engine) QueueStats() (puts, gets uint64) {
	for _, t := range e.tasks {
		if t.in == nil {
			continue
		}
		p, g := t.in.Stats()
		puts += p
		gets += g
	}
	return puts, gets
}

// PoolStats sums the tuple-pool get/put accounting across all task
// pools. It only reports non-zero values when Config.TrackPools was
// set. With no run in flight and every retained tuple released,
// gets == puts; any difference is a leaked (or double-freed) tuple.
func (e *Engine) PoolStats() (gets, puts uint64) {
	for _, t := range e.tasks {
		g, p := t.pool.Stats()
		gets += g
		puts += p
	}
	return gets, puts
}

func (e *Engine) runTask(t *task) {
	// Pinning first, so its deferred undo runs last: the final flush
	// still happens on the pinned thread, and the thread returns to the
	// runtime's pool with its original mask however the task exits
	// (EOF, kill, panic) — which is what keeps Run re-runnable.
	if unpin := pinThread(t.pinCPUs); unpin != nil {
		e.pinned.Add(1)
		defer unpin()
	}
	defer func() {
		if r := recover(); r != nil {
			e.recordErr(fmt.Errorf("engine: operator %s panicked: %v", t.label, r))
			e.stop.Store(true)
			e.closeAllQueues()
		}
		e.flushAll(t)
		e.finishProducing(t)
	}()

	if t.spout != nil {
		c := &collector{e: e, t: t}
		iter := 0
		for !e.stop.Load() {
			err := t.spout.Next(c)
			if c.fail != nil {
				e.failTask(c.fail)
				return
			}
			if err == io.EOF {
				// Finite stream: broadcast the final watermark so every
				// open window downstream fires before shutdown, and —
				// under checkpointing — the done marker, so consumers
				// stop expecting barriers from this source while other
				// sources keep running.
				c.EmitWatermark(WatermarkMax)
				if c.fail == nil && e.coord != nil {
					if err := e.broadcastPunct(t, barrierStreamID, barrierDone, time.Time{}); err != nil {
						c.fail = err
					}
				}
				if c.fail != nil && !errors.Is(c.fail, ErrStopped) {
					e.failTask(c.fail)
					return
				}
				e.finishTask(t)
				return
			}
			if err != nil {
				e.recordErr(fmt.Errorf("engine: spout %s: %w", t.label, err))
				return
			}
			// Checkpoint injection point: between Next calls the source
			// is at a well-defined offset, so this is where the barrier
			// (and the source's own snapshot) is taken.
			if e.coord != nil {
				if req := e.ckptReq.Load(); req > t.lastCkpt {
					if err := e.sourceBarrier(t, c, req); err != nil {
						e.failTask(err)
						return
					}
				}
			}
			// Spouts have no blocking input to piggyback timer checks
			// on, so poll the clock every few iterations while timers
			// (the linger flush, spout-registered proc timers) pend.
			if iter++; iter&31 == 0 && t.tm.procPending() && !time.Now().Before(t.tm.nextProc()) {
				if err := e.fireProcTimers(t, c); err != nil {
					e.failTask(err)
					return
				}
			}
		}
		return
	}

	c := &collector{e: e, t: t}
	for {
		var j *tuple.Jumbo
		if t.tm.procPending() {
			// Wake at the earliest processing-time deadline even if no
			// input flows: that is what bounds the linger latency.
			jj, ok, err := t.in.GetUntil(t.tm.nextProc())
			if err != nil {
				e.drainAlignment(t, c) // closed and drained
				e.finishTask(t)
				return
			}
			if !ok {
				if err := e.fireProcTimers(t, c); err != nil {
					e.failTask(err)
					return
				}
				continue
			}
			j = jj
		} else {
			jj, err := t.in.Get()
			if err != nil {
				e.drainAlignment(t, c) // closed and drained
				e.finishTask(t)
				return
			}
			j = jj
		}
		if t.alignID != 0 && t.alignSeen[j.Producer] {
			// Barrier alignment in progress and this edge's barrier has
			// already arrived: everything it sends now belongs after the
			// snapshot, so park the batch until alignment completes.
			t.alignBuf = append(t.alignBuf, j)
			continue
		}
		if err := e.consumeJumbo(t, c, j); err != nil {
			e.failTask(err)
			return
		}
		if t.tm.procPending() && !time.Now().Before(t.tm.nextProc()) {
			if err := e.fireProcTimers(t, c); err != nil {
				e.failTask(err)
				return
			}
		}
	}
}

// consumeJumbo processes one received jumbo batch: data tuples go to the
// operator, watermark punctuations to the fan-in merge, checkpoint
// barriers to the alignment protocol. It consumes the batch (tuples are
// released, the header recycled).
func (e *Engine) consumeJumbo(t *task, c *collector, j *tuple.Jumbo) error {
	e.chargeRMA(t, j)
	// Queue-wait attribution: diff the producer's enqueue stamp once per
	// batch, then charge it once per carried tuple — a 64-tuple jumbo
	// that waited 1ms represents 64 tuples that each waited 1ms, so the
	// cumulative counters weight by batch length (keeping the
	// ns-per-tuple ratio comparable across batch sizes and between the
	// scalar and columnar paths). Every tuple's queueing is covered (not
	// just traced ones) at zero per-tuple cost; a batch replayed after
	// barrier parking counts its park time too — it really did wait that
	// long. The rolling window still observes the raw per-batch wait.
	var qwait int64
	if j.EnqNs != 0 {
		qwait = time.Now().UnixNano() - j.EnqNs
		if qwait < 0 {
			qwait = 0
		}
		if n := uint64(j.Len()); n > 0 {
			atomic.AddUint64(&t.qwaitNs, uint64(qwait)*n)
			atomic.AddUint64(&t.qwaitBatches, n)
		}
		if t.qwaitWin != nil {
			t.qwaitWin.Observe(float64(qwait))
		}
	}
	if j.Batch != nil {
		return e.consumeBatch(t, c, j, qwait)
	}
	// rev is this edge's reverse recycling ring: releases on this (the
	// consuming) goroutine flow back to the producer's pool through it,
	// staying NUMA-local instead of riding sync.Pool. Releases from any
	// other goroutine (retained tuples) keep using plain Release.
	var rev *tuple.RecycleRing
	if j.Producer < len(t.rev) {
		rev = t.rev[j.Producer]
	}
	for i, in := range j.Tuples {
		if in.Stream == punctStreamID {
			// Watermark punctuation: consumed by the engine, not
			// the operator, and excluded from every data counter.
			err := e.handlePunct(t, c, in, j.Producer)
			in.ReleaseTo(rev)
			if err != nil {
				return err
			}
			continue
		}
		if in.Stream == barrierStreamID {
			// Checkpoint barrier: align, and if this edge is now blocked
			// park the batch remainder (barriers are flushed as the last
			// tuple of their batch, so the remainder is normally empty).
			ev := in.Event
			in.ReleaseTo(rev)
			if ev == barrierDone {
				if err := e.handleDoneBarrier(t, c, j.Producer); err != nil {
					return err
				}
				continue
			}
			if err := e.handleBarrier(t, c, uint64(ev), j.Producer); err != nil {
				return err
			}
			if t.alignID != 0 && t.alignSeen[j.Producer] && i+1 < len(j.Tuples) {
				rest := e.getJumbo(t)
				rest.Producer, rest.Consumer = j.Producer, j.Consumer
				rest.EnqNs = j.EnqNs
				rest.Tuples = append(rest.Tuples, j.Tuples[i+1:]...)
				t.alignBuf = append(t.alignBuf, rest)
				// The parked remainder owns those tuples now.
				clear(j.Tuples[i+1:])
				j.Tuples = j.Tuples[:i+1]
				break
			}
			continue
		}
		c.curTs, c.curEvent = in.Ts, in.Event
		c.curTrace, c.curOrigin = in.TraceID, in.TraceOrigin
		if e.cfg.ExtraWorkNs > 0 {
			spin(e.cfg.ExtraWorkNs)
		}
		if t.isSink {
			e.sink.Inc()
			if !in.Ts.IsZero() {
				ns := float64(time.Since(in.Ts).Nanoseconds())
				e.lat.Observe(ns)
				if e.obsLat != nil {
					e.obsLat.Observe(ns)
					e.obsLatHist.Observe(ns)
				}
			}
		}
		if t.operator != nil {
			if err := e.invokeOperator(t, c, in, qwait); err != nil {
				return err
			}
		}
		atomic.AddUint64(&t.processed, 1)
		// The consumer's reference ends here; unless the operator
		// retained it, the tuple returns to its producer's pool —
		// through the edge's reverse ring when one is wired.
		in.ReleaseTo(rev)
	}
	e.recycleJumbo(t, j)
	return nil
}

// invokeOperator runs the operator on one materialized input tuple —
// shared by the scalar consume loop and the columnar row adapter.
//
// Profile sampling: time every k-th invocation and record the input
// tuple's size, so a running engine yields the Te/N the performance
// model consumes without instrumenting every tuple. A traced input
// tuple gets its invocation timed too, and a span recorded after
// Process: this hop's queue wait, service time and output fan-out.
// Untraced tuples pay exactly one predictable branch here.
func (e *Engine) invokeOperator(t *task, c *collector, in *tuple.Tuple, qwait int64) error {
	var started time.Time
	sampled := false
	if e.cfg.ProfileSampleEvery > 0 {
		if c.pseq++; c.pseq%uint64(e.cfg.ProfileSampleEvery) == 0 {
			sampled = true
			atomic.AddUint64(&t.inBytes, uint64(in.Size()))
			started = time.Now()
		}
	}
	traced := in.TraceID != 0 && t.spans != nil
	var emit0 uint64
	if traced {
		emit0 = atomic.LoadUint64(&t.emitted)
		if started.IsZero() {
			started = time.Now()
		}
	}
	if err := t.operator.Process(c, in); err != nil {
		return fmt.Errorf("engine: operator %s: %w", t.label, err)
	}
	if sampled || traced {
		dur := time.Since(started)
		if sampled {
			atomic.AddUint64(&t.serviceNs, uint64(dur))
			atomic.AddUint64(&t.serviceSamples, 1)
		}
		if t.svcWin != nil {
			t.svcWin.Observe(float64(dur))
		}
		if traced {
			t.spans.Append(obs.Span{
				TraceID:     in.TraceID,
				OriginNs:    in.TraceOrigin,
				AtNs:        started.UnixNano() + int64(dur),
				QueueWaitNs: qwait,
				ServiceNs:   int64(dur),
				Emitted:     atomic.LoadUint64(&t.emitted) - emit0,
				Kind:        obs.SpanHop,
			})
		}
	}
	return c.fail
}

// consumeBatch processes one received columnar batch. Batches carry
// only data (punctuations ride scalar jumbos), so there is no per-row
// stream check. A BatchOperator gets the whole batch in one
// ProcessBatch call — the vectorized path — unless the batch carries
// traced rows and tracing is armed, in which case the row adapter runs
// so per-tuple span semantics stay exact. Scalar operators get each row
// materialized into a pooled scratch tuple (the adapter), preserving
// Process semantics bit-for-bit. The drained batch is parked on the
// producer edge's reverse free ring for reuse.
func (e *Engine) consumeBatch(t *task, c *collector, j *tuple.Jumbo, qwait int64) error {
	b := j.Batch
	n := b.Len()
	if e.cfg.ExtraWorkNs > 0 {
		for r := 0; r < n; r++ {
			spin(e.cfg.ExtraWorkNs)
		}
	}
	if t.isSink {
		for r := 0; r < n; r++ {
			e.sink.Inc()
			if ts := b.Ts(r); !ts.IsZero() {
				ns := float64(time.Since(ts).Nanoseconds())
				e.lat.Observe(ns)
				if e.obsLat != nil {
					e.obsLat.Observe(ns)
					e.obsLatHist.Observe(ns)
				}
			}
		}
	}
	if t.operator == nil {
		atomic.AddUint64(&t.processed, uint64(n))
	} else if bop, ok := t.operator.(BatchOperator); ok && !(b.HasTrace() && t.spans != nil) {
		// Vectorized path. Profile sampling covers the whole batch when
		// the k-th-invocation counter crosses a period boundary inside
		// it; serviceSamples advances by the row count so the
		// ns-per-tuple averages stay comparable with the scalar path.
		var started time.Time
		sampled := false
		if e.cfg.ProfileSampleEvery > 0 {
			k := uint64(e.cfg.ProfileSampleEvery)
			if (c.pseq+uint64(n))/k != c.pseq/k {
				sampled = true
				atomic.AddUint64(&t.inBytes, uint64(b.Size()))
				started = time.Now()
			}
			c.pseq += uint64(n)
		}
		// inBatch suspends the collector's ambient meta stamping: one
		// batch spans many source rows, so a single curTs/curEvent would
		// smear the first row's context over every output. Batch
		// operators stamp per row via Batch.StampMeta.
		c.inBatch = true
		err := bop.ProcessBatch(c, b)
		c.inBatch = false
		if err != nil {
			return fmt.Errorf("engine: operator %s: %w", t.label, err)
		}
		if sampled {
			dur := time.Since(started)
			atomic.AddUint64(&t.serviceNs, uint64(dur))
			atomic.AddUint64(&t.serviceSamples, uint64(n))
			if t.svcWin != nil {
				t.svcWin.Observe(float64(dur) / float64(max(n, 1)))
			}
		}
		if c.fail != nil {
			return c.fail
		}
		atomic.AddUint64(&t.processed, uint64(n))
	} else {
		// Row adapter: materialize into a pooled scratch tuple. The
		// scratch comes from (and returns to) this task's own pool, so
		// the copy stays socket-local.
		for r := 0; r < n; r++ {
			in := t.pool.Get()
			b.CopyRowTo(r, in)
			c.curTs, c.curEvent = in.Ts, in.Event
			c.curTrace, c.curOrigin = in.TraceID, in.TraceOrigin
			err := e.invokeOperator(t, c, in, qwait)
			in.Release()
			if err != nil {
				return err
			}
			atomic.AddUint64(&t.processed, 1)
		}
	}
	// Recycle: park the drained batch on the producer edge's reverse
	// free ring (consumer puts, producer gets — the FreeRing's SPSC
	// discipline). A full or missing ring drops the batch to the GC.
	j.Batch = nil
	b.Reset()
	if j.Producer >= 0 && j.Producer < len(e.tasks) {
		pt := e.tasks[j.Producer]
		if t.id < len(pt.out) {
			if pe := pt.out[t.id]; pe != nil && pe.colFree != nil {
				pe.colFree.TryPut(b)
			}
		}
	}
	e.recycleJumbo(t, j)
	return nil
}

// failTask handles a task-fatal dispatch or operator error: a routing
// failure (e.g. RouteError) is recorded and aborts the run; ErrStopped
// only means a downstream queue closed during shutdown, so the task
// simply exits. Either way all queues are closed so no peer blocks on a
// task that is gone.
func (e *Engine) failTask(err error) {
	if !errors.Is(err, ErrStopped) {
		e.recordErr(err)
	}
	e.stop.Store(true)
	e.closeAllQueues()
}

// chargeRMA emulates the remote-fetch penalty of Formula 2 for a batch.
func (e *Engine) chargeRMA(t *task, j *tuple.Jumbo) {
	if e.cfg.Machine == nil || e.cfg.RMAScale <= 0 {
		return
	}
	prod := e.tasks[j.Producer]
	if prod.socket == t.socket {
		return
	}
	var total float64
	if b := j.Batch; b != nil {
		// Columnar payload: charge the mean per-row footprint once per
		// row, matching what the scalar loop would charge for the same
		// tuples within rounding.
		if n := b.Len(); n > 0 {
			total = e.cfg.Machine.FetchCost(b.Size()/n, prod.socket, t.socket) * float64(n)
		}
	} else {
		for _, in := range j.Tuples {
			total += e.cfg.Machine.FetchCost(in.Size(), prod.socket, t.socket)
		}
	}
	spin(int(total * e.cfg.RMAScale))
}

// finishProducing closes this task's private ring into each consumer it
// feeds. A consumer's inbox reports closed only once every bound ring is
// closed and drained, so "the last producer closes the queue" needs no
// shared refcount.
func (e *Engine) finishProducing(t *task) {
	for _, oe := range t.outList {
		oe.ring.Close()
	}
}

func (e *Engine) closeAllQueues() {
	for _, t := range e.tasks {
		if t.in != nil {
			t.in.Close()
		}
	}
}

// Snapshot returns the cumulative processed-tuple count per operator at
// this instant. It is safe to call while the engine runs; the adaptive
// re-optimization advisor polls it to derive live rates.
func (e *Engine) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(e.byOp))
	for _, t := range e.tasks {
		out[t.op] += atomic.LoadUint64(&t.processed)
	}
	return out
}

// SinkCount returns the tuples received by sinks so far.
func (e *Engine) SinkCount() uint64 { return e.sink.Value() }

// ProfileSnapshot captures every task's live-profiling counters at this
// instant: processed/emitted tuple counts, the sampled service-time and
// input-size accumulators (populated when Config.ProfileSampleEvery is
// set), and the live inbox depth. It is safe to call while the engine
// runs; profile.FromEngine differences two snapshots into the Set the
// optimizer consumes.
func (e *Engine) ProfileSnapshot() profile.EngineSnapshot {
	s := profile.EngineSnapshot{At: time.Now(), Tasks: make([]profile.TaskSnapshot, 0, len(e.tasks))}
	for _, t := range e.tasks {
		ts := profile.TaskSnapshot{
			Op:             t.op,
			Replica:        t.replica,
			Processed:      atomic.LoadUint64(&t.processed),
			Emitted:        atomic.LoadUint64(&t.emitted),
			ServiceNs:      atomic.LoadUint64(&t.serviceNs),
			ServiceSamples: atomic.LoadUint64(&t.serviceSamples),
			InBytes:        atomic.LoadUint64(&t.inBytes),
			QueueWaitNs:    atomic.LoadUint64(&t.qwaitNs),
			QueueWaitBatch: atomic.LoadUint64(&t.qwaitBatches),
		}
		if t.in != nil {
			ts.QueueDepth = t.in.Len()
		}
		s.Tasks = append(s.Tasks, ts)
	}
	return s
}

func (e *Engine) recordErr(err error) {
	e.errsMu.Lock()
	e.errs = append(e.errs, err)
	e.errsMu.Unlock()
}

// spin busy-waits approximately ns nanoseconds.
func spin(ns int) {
	if ns <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(ns))
	for time.Now().Before(deadline) {
	}
}
