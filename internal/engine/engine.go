// Package engine is BriskStream's shared-memory streaming runtime
// (Section 5 and Appendix A). An application runs inside one process;
// every operator replica is a task executed by its own goroutine (the
// paper uses Java threads), consisting of an executor and a partition
// controller. Tuples are passed by reference: a producer stores its
// output locally and enqueues pointers; accumulated tuples destined for
// the same consumer are combined into a jumbo tuple that shares one
// header and costs a single queue insertion (Section 5.2).
//
// The engine also exposes the knobs the factor analysis (Figure 16)
// needs to emulate a distributed-engine execution path on the same
// topology: per-hop (de)serialization, defensive tuple copies instead of
// reference passing, disabled jumbo tuples, and an artificial extra
// instruction footprint.
package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/metrics"
	"briskstream/internal/numa"
	"briskstream/internal/queue"
	"briskstream/internal/tuple"
)

// Collector receives the tuples an operator emits during one invocation.
type Collector interface {
	// Emit sends values on the default stream.
	Emit(values ...tuple.Value)
	// EmitTo sends values on a named stream.
	EmitTo(stream string, values ...tuple.Value)
}

// Operator is the processing interface: Process consumes one input tuple
// and emits any number of outputs through the collector. Each replica
// gets its own Operator instance, so implementations may keep
// unsynchronized state.
type Operator interface {
	Process(c Collector, t *tuple.Tuple) error
}

// OperatorFunc adapts a function to Operator.
type OperatorFunc func(c Collector, t *tuple.Tuple) error

// Process implements Operator.
func (f OperatorFunc) Process(c Collector, t *tuple.Tuple) error { return f(c, t) }

// Spout produces input tuples. Next is called in a loop; it emits zero or
// more tuples per call and returns io.EOF when the stream is exhausted.
type Spout interface {
	Next(c Collector) error
}

// SpoutFunc adapts a function to Spout.
type SpoutFunc func(c Collector) error

// Next implements Spout.
func (f SpoutFunc) Next(c Collector) error { return f(c) }

// Config tunes the runtime.
type Config struct {
	// QueueCapacity bounds each task input queue (in queue slots; a
	// slot holds a jumbo tuple). Default 64. The budget is split across
	// the task's per-producer SPSC rings: each of N producers gets
	// QueueCapacity/N slots (minimum 1, rounded up to a power of two),
	// keeping total buffering close to the single-queue semantics.
	QueueCapacity int
	// BatchSize is the jumbo-tuple size: output tuples buffered per
	// consumer before one queue insertion. Default 64. Ignored (forced
	// to 1) when JumboTuples is false.
	BatchSize int
	// LatencySampleEvery stamps every k-th spout tuple with a timestamp
	// for end-to-end latency measurement. Default 64; 0 disables.
	LatencySampleEvery int

	// JumboTuples enables batched single-insertion transfers (Section
	// 5.2). Disabling it emulates per-tuple queue insertions.
	JumboTuples bool
	// PassByReference passes tuple pointers between tasks. Disabling it
	// clones every tuple at every hop, emulating the defensive copies
	// and duplicate object creation of distributed DSPSs (Section 5.1).
	PassByReference bool
	// Serialize marshals and unmarshals every tuple at every hop,
	// emulating a (de)serialization-based transport.
	Serialize bool
	// ExtraWorkNs busy-spins this many nanoseconds per processed tuple,
	// emulating a larger instruction footprint (condition checking,
	// exception paths) on the critical path.
	ExtraWorkNs int

	// Machine and RMAScale emulate the NUMA fetch penalty: when a task
	// is placed on a different socket than the producing task, the
	// consumer busy-waits FetchCost(N)*RMAScale nanoseconds per tuple
	// before processing. Zero scale or nil machine disables emulation.
	Machine  *numa.Machine
	RMAScale float64
	// Placement maps "op#replica" labels to sockets (only used when
	// Machine is set).
	Placement map[string]numa.SocketID
}

// DefaultConfig returns the BriskStream-mode configuration.
func DefaultConfig() Config {
	return Config{
		QueueCapacity:      64,
		BatchSize:          64,
		LatencySampleEvery: 64,
		JumboTuples:        true,
		PassByReference:    true,
	}
}

// StormLikeConfig returns a configuration that emulates the overhead
// class of a distributed DSPS runtime collapsed onto one machine:
// serialization at every hop, per-tuple queue insertions, defensive
// copies, and a heavier instruction footprint. The queue capacity is
// raised so the buffering budget in tuples matches the default
// configuration (64 slots x 64-tuple jumbos): distributed engines
// buffer at least as much in their transport layers, and a smaller
// buffer would understate their queueing latency.
func StormLikeConfig() Config {
	c := DefaultConfig()
	c.JumboTuples = false
	c.PassByReference = false
	c.Serialize = true
	c.ExtraWorkNs = 500
	c.QueueCapacity = 64 * 64
	return c
}

// Topology binds a logical graph to operator implementations.
type Topology struct {
	App         *graph.Graph
	Spouts      map[string]func() Spout
	Operators   map[string]func() Operator
	Replication map[string]int
}

// Result reports one run.
type Result struct {
	// Duration is the measured wall time.
	Duration time.Duration
	// SinkTuples counts tuples received by sink tasks.
	SinkTuples uint64
	// Throughput is SinkTuples/Duration in tuples/sec.
	Throughput float64
	// Latency is the sampled end-to-end latency distribution (ns).
	Latency *metrics.Histogram
	// Processed counts processed tuples per operator.
	Processed map[string]uint64
	// QueuePuts and QueueGets count jumbo-tuple queue insertions and
	// removals across all task inboxes, read from the queues' atomic
	// counters (Section 5.2's amortization is QueuePuts vs SinkTuples).
	QueuePuts, QueueGets uint64
	// Errors aggregates operator failures (panics are recovered and
	// reported here; the rest of the pipeline is shut down cleanly).
	Errors []error
}

type task struct {
	id       int
	op       string
	replica  int
	label    string
	spout    Spout
	operator Operator
	isSink   bool
	in       *queue.Inbox[*tuple.Jumbo]
	socket   numa.SocketID

	// routing: per logical out-edge, the consumer tasks and partitioning
	routes []route

	// out is indexed by consumer task id (nil for tasks this one does
	// not feed); outList is the dense list of the same edges for flush
	// and shutdown, so neither path scans all tasks.
	out     []*outEdge
	outList []*outEdge

	processed uint64
}

// outEdge is one (producer, consumer) communication edge: the
// producer's private SPSC ring into the consumer's inbox plus the
// jumbo-tuple accumulation buffer.
type outEdge struct {
	consumer *task
	ring     *queue.Ring[*tuple.Jumbo]
	buf      []*tuple.Tuple
}

type route struct {
	stream    string
	part      graph.Partitioning
	keyField  int
	consumers []*task
	rr        int // round-robin cursor for shuffle
}

// RouteError reports a tuple that could not be routed by a
// fields-grouping key: the tuple is narrower than the edge's declared
// key field. It is returned through Result.Errors instead of panicking
// inside dispatch.
type RouteError struct {
	Task     string // producing task label, e.g. "split#0"
	Stream   string // output stream of the offending edge
	KeyField int    // declared key field index
	Width    int    // actual number of values in the tuple
}

// Error implements error.
func (e *RouteError) Error() string {
	return fmt.Sprintf("engine: task %s stream %q: fields grouping needs key field %d but tuple has %d values",
		e.Task, e.Stream, e.KeyField, e.Width)
}

// Engine executes one topology.
type Engine struct {
	cfg    Config
	topo   Topology
	tasks  []*task
	byOp   map[string][]*task
	stop   atomic.Bool
	sink   metrics.Counter
	lat    *metrics.Histogram
	errs   []error
	errsMu sync.Mutex

	// batchPool recycles jumbo batch slices (cap = BatchSize) between
	// the producer that fills one and the consumer that drains it, so
	// the steady-state hot path allocates no slices per flush.
	batchPool sync.Pool
}

// New builds an engine for the topology. Replication defaults to 1 per
// operator.
func New(topo Topology, cfg Config) (*Engine, error) {
	if err := topo.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if !cfg.JumboTuples {
		cfg.BatchSize = 1
	}
	e := &Engine{cfg: cfg, topo: topo, byOp: map[string][]*task{}, lat: metrics.NewHistogram(0)}
	batch := cfg.BatchSize
	e.batchPool.New = func() any { return make([]*tuple.Tuple, 0, batch) }

	for _, n := range topo.App.Nodes() {
		repl := 1
		if topo.Replication != nil && topo.Replication[n.Name] > 0 {
			repl = topo.Replication[n.Name]
		}
		for i := 0; i < repl; i++ {
			t := &task{
				id:      len(e.tasks),
				op:      n.Name,
				replica: i,
				label:   fmt.Sprintf("%s#%d", n.Name, i),
				isSink:  n.IsSink,
			}
			if n.IsSpout {
				mk, ok := topo.Spouts[n.Name]
				if !ok {
					return nil, fmt.Errorf("engine: no spout builder for %q", n.Name)
				}
				t.spout = mk()
			} else {
				mk, ok := topo.Operators[n.Name]
				if !ok {
					return nil, fmt.Errorf("engine: no operator builder for %q", n.Name)
				}
				t.operator = mk()
				t.in = queue.NewInbox[*tuple.Jumbo](cfg.QueueCapacity)
			}
			if cfg.Placement != nil {
				t.socket = cfg.Placement[t.label]
			}
			e.tasks = append(e.tasks, t)
			e.byOp[n.Name] = append(e.byOp[n.Name], t)
		}
	}

	// QueueCapacity bounds a task's whole input queue, so split it
	// across the task's per-producer rings: with the budget divided, a
	// consumer fed by many producers buffers roughly as much as the old
	// single MPSC queue did (each ring keeps at least one slot, and
	// ring sizes round up to a power of two).
	for _, ct := range e.tasks {
		if ct.in == nil {
			continue
		}
		nprod := 0
		for _, p := range topo.App.Producers(ct.op) {
			nprod += len(e.byOp[p])
		}
		if nprod > 1 {
			ct.in.SetRingCap(cfg.QueueCapacity / nprod)
		}
	}

	// Wire routes and per-edge SPSC rings. One ring per distinct
	// (producer task, consumer task) pair: an operator pair may be
	// connected by several streams, but all of them share the edge's
	// ring, and the producing task closes its rings exactly once.
	for _, n := range topo.App.Nodes() {
		for _, edge := range topo.App.Out(n.Name) {
			consumers := e.byOp[edge.To]
			for _, pt := range e.byOp[n.Name] {
				pt.routes = append(pt.routes, route{
					stream:    edge.Stream,
					part:      edge.Partitioning,
					keyField:  edge.KeyField,
					consumers: consumers,
					// Offset cursors so replicas of one producer start
					// on different consumers; each cursor still visits
					// every consumer uniformly (index before increment).
					rr: pt.replica % max(len(consumers), 1),
				})
				for _, ct := range consumers {
					for len(pt.out) <= ct.id {
						pt.out = append(pt.out, nil)
					}
					if pt.out[ct.id] == nil {
						oe := &outEdge{consumer: ct, ring: ct.in.Bind()}
						pt.out[ct.id] = oe
						pt.outList = append(pt.outList, oe)
					}
				}
			}
		}
	}
	return e, nil
}

// ErrStopped is returned by collectors after the engine begins shutdown.
var ErrStopped = errors.New("engine: stopped")

// collector implements Collector for one task.
type collector struct {
	e     *Engine
	t     *task
	seq   uint64
	curTs time.Time // event time of the input tuple being processed
	fail  error
}

// Emit implements Collector.
func (c *collector) Emit(values ...tuple.Value) { c.EmitTo(tuple.DefaultStream, values...) }

// EmitTo implements Collector.
func (c *collector) EmitTo(stream string, values ...tuple.Value) {
	if c.fail != nil {
		return
	}
	out := &tuple.Tuple{Values: values, Stream: stream}
	if c.t.spout != nil {
		// Latency sampling: spouts stamp every k-th tuple.
		if c.e.cfg.LatencySampleEvery > 0 {
			c.seq++
			if c.seq%uint64(c.e.cfg.LatencySampleEvery) == 0 {
				out.Ts = time.Now()
			}
		}
	} else {
		// Event time propagates downstream so sinks can measure
		// end-to-end latency.
		out.Ts = c.curTs
	}
	if err := c.e.dispatch(c.t, out); err != nil {
		c.fail = err
	}
}

// dispatch routes one output tuple through the task's partition
// controller into per-consumer buffers, flushing full jumbo tuples.
func (e *Engine) dispatch(t *task, out *tuple.Tuple) error {
	for ri := range t.routes {
		r := &t.routes[ri]
		if r.stream != out.Stream {
			continue
		}
		switch r.part {
		case graph.Broadcast:
			for _, c := range r.consumers {
				if err := e.buffer(t, c, out, len(r.consumers) > 1); err != nil {
					return err
				}
			}
		case graph.Global:
			if err := e.buffer(t, r.consumers[0], out, false); err != nil {
				return err
			}
		case graph.Fields:
			if r.keyField < 0 || r.keyField >= len(out.Values) {
				return &RouteError{Task: t.label, Stream: r.stream, KeyField: r.keyField, Width: len(out.Values)}
			}
			idx := int(hashValue(out.Values[r.keyField]) % uint64(len(r.consumers)))
			if err := e.buffer(t, r.consumers[idx], out, false); err != nil {
				return err
			}
		default: // Shuffle
			idx := r.rr
			if r.rr++; r.rr == len(r.consumers) {
				r.rr = 0
			}
			if err := e.buffer(t, r.consumers[idx], out, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// buffer appends a tuple to the producer's per-consumer output buffer
// and flushes it as a jumbo tuple when full.
func (e *Engine) buffer(t *task, consumer *task, out *tuple.Tuple, copyForFanout bool) error {
	msg := out
	if copyForFanout || !e.cfg.PassByReference {
		msg = out.Clone()
	}
	if e.cfg.Serialize {
		// Emulate a serialization transport: marshal + unmarshal per
		// tuple, preserving the timestamp for latency accounting.
		buf := tuple.Marshal(msg, nil)
		decoded, _, err := tuple.Unmarshal(buf)
		if err != nil {
			return err
		}
		msg = decoded
	}
	oe := t.out[consumer.id]
	if oe.buf == nil {
		oe.buf = e.batchPool.Get().([]*tuple.Tuple)
	}
	oe.buf = append(oe.buf, msg)
	if len(oe.buf) >= e.cfg.BatchSize {
		batch := oe.buf
		oe.buf = nil
		return e.send(t, oe, batch)
	}
	return nil
}

func (e *Engine) send(t *task, oe *outEdge, batch []*tuple.Tuple) error {
	j := &tuple.Jumbo{Producer: t.id, Consumer: oe.consumer.id, Tuples: batch}
	if err := oe.ring.Put(j); err != nil {
		return ErrStopped
	}
	return nil
}

// recycleBatch returns a drained jumbo batch slice to the pool. Slots
// are cleared first so the pool does not pin consumed tuples.
func (e *Engine) recycleBatch(batch []*tuple.Tuple) {
	if cap(batch) != e.cfg.BatchSize {
		return // foreign or resized slice; let the GC take it
	}
	for i := range batch {
		batch[i] = nil
	}
	e.batchPool.Put(batch[:0])
}

// flushAll flushes all pending buffers of a task.
func (e *Engine) flushAll(t *task) {
	for _, oe := range t.outList {
		if len(oe.buf) == 0 {
			continue
		}
		batch := oe.buf
		oe.buf = nil
		_ = e.send(t, oe, batch)
	}
}

// Run executes the topology until every spout returns io.EOF, or for at
// most d if d > 0 (duration-bound measurement runs). It returns the run
// metrics; operator errors are collected in Result.Errors.
func (e *Engine) Run(d time.Duration) (*Result, error) {
	start := time.Now()
	var wg sync.WaitGroup
	e.stop.Store(false)

	for _, t := range e.tasks {
		wg.Add(1)
		go func(t *task) {
			defer wg.Done()
			e.runTask(t)
		}(t)
	}

	if d > 0 {
		timer := time.AfterFunc(d, func() { e.stop.Store(true) })
		defer timer.Stop()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Duration:   elapsed,
		SinkTuples: e.sink.Value(),
		Latency:    e.lat,
		Processed:  map[string]uint64{},
		Errors:     e.errs,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.SinkTuples) / elapsed.Seconds()
	}
	for _, t := range e.tasks {
		res.Processed[t.op] += atomic.LoadUint64(&t.processed)
	}
	res.QueuePuts, res.QueueGets = e.QueueStats()
	return res, nil
}

// QueueStats returns the cumulative jumbo-tuple queue insertions and
// removals across all task inboxes. It reads atomic counters, so it is
// safe to call while the engine runs (the metrics layer polls it the
// same way Snapshot is polled for rates).
func (e *Engine) QueueStats() (puts, gets uint64) {
	for _, t := range e.tasks {
		if t.in == nil {
			continue
		}
		p, g := t.in.Stats()
		puts += p
		gets += g
	}
	return puts, gets
}

func (e *Engine) runTask(t *task) {
	defer func() {
		if r := recover(); r != nil {
			e.recordErr(fmt.Errorf("engine: operator %s panicked: %v", t.label, r))
			e.stop.Store(true)
			e.closeAllQueues()
		}
		e.flushAll(t)
		e.finishProducing(t)
	}()

	if t.spout != nil {
		c := &collector{e: e, t: t}
		for !e.stop.Load() {
			err := t.spout.Next(c)
			if c.fail != nil {
				e.failTask(c.fail)
				return
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				e.recordErr(fmt.Errorf("engine: spout %s: %w", t.label, err))
				return
			}
			atomic.AddUint64(&t.processed, 1)
		}
		return
	}

	c := &collector{e: e, t: t}
	for {
		j, err := t.in.Get()
		if err != nil {
			return // closed and drained
		}
		e.chargeRMA(t, j)
		for _, in := range j.Tuples {
			c.curTs = in.Ts
			if e.cfg.ExtraWorkNs > 0 {
				spin(e.cfg.ExtraWorkNs)
			}
			if t.isSink {
				e.sink.Inc()
				if !in.Ts.IsZero() {
					e.lat.Observe(float64(time.Since(in.Ts).Nanoseconds()))
				}
			}
			if t.operator != nil {
				if err := t.operator.Process(c, in); err != nil {
					e.failTask(fmt.Errorf("engine: operator %s: %w", t.label, err))
					return
				}
				if c.fail != nil {
					e.failTask(c.fail)
					return
				}
			}
			atomic.AddUint64(&t.processed, 1)
		}
		e.recycleBatch(j.Tuples)
	}
}

// failTask handles a task-fatal dispatch or operator error: a routing
// failure (e.g. RouteError) is recorded and aborts the run; ErrStopped
// only means a downstream queue closed during shutdown, so the task
// simply exits. Either way all queues are closed so no peer blocks on a
// task that is gone.
func (e *Engine) failTask(err error) {
	if !errors.Is(err, ErrStopped) {
		e.recordErr(err)
	}
	e.stop.Store(true)
	e.closeAllQueues()
}

// chargeRMA emulates the remote-fetch penalty of Formula 2 for a batch.
func (e *Engine) chargeRMA(t *task, j *tuple.Jumbo) {
	if e.cfg.Machine == nil || e.cfg.RMAScale <= 0 {
		return
	}
	prod := e.tasks[j.Producer]
	if prod.socket == t.socket {
		return
	}
	var total float64
	for _, in := range j.Tuples {
		total += e.cfg.Machine.FetchCost(in.Size(), prod.socket, t.socket)
	}
	spin(int(total * e.cfg.RMAScale))
}

// finishProducing closes this task's private ring into each consumer it
// feeds. A consumer's inbox reports closed only once every bound ring is
// closed and drained, so "the last producer closes the queue" needs no
// shared refcount.
func (e *Engine) finishProducing(t *task) {
	for _, oe := range t.outList {
		oe.ring.Close()
	}
}

func (e *Engine) closeAllQueues() {
	for _, t := range e.tasks {
		if t.in != nil {
			t.in.Close()
		}
	}
}

// Snapshot returns the cumulative processed-tuple count per operator at
// this instant. It is safe to call while the engine runs; the adaptive
// re-optimization advisor polls it to derive live rates.
func (e *Engine) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(e.byOp))
	for _, t := range e.tasks {
		out[t.op] += atomic.LoadUint64(&t.processed)
	}
	return out
}

// SinkCount returns the tuples received by sinks so far.
func (e *Engine) SinkCount() uint64 { return e.sink.Value() }

func (e *Engine) recordErr(err error) {
	e.errsMu.Lock()
	e.errs = append(e.errs, err)
	e.errsMu.Unlock()
}

// spin busy-waits approximately ns nanoseconds.
func spin(ns int) {
	if ns <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(ns))
	for time.Now().Before(deadline) {
	}
}

// hashValue hashes a tuple field for Fields partitioning.
func hashValue(v tuple.Value) uint64 {
	h := fnv.New64a()
	switch x := v.(type) {
	case string:
		h.Write([]byte(x))
	case int64:
		var b [8]byte
		u := uint64(x)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	case int:
		return hashValue(int64(x))
	case float64:
		return hashValue(int64(math.Float64bits(x)))
	case bool:
		if x {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	default:
		h.Write([]byte(fmt.Sprint(x)))
	}
	return h.Sum64()
}
