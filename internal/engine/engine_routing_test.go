package engine

// engine_routing_test.go covers the partition-controller fixes of the
// queue/dispatch rework: shuffle round-robin starting at replica 0 (the
// old cursor pre-increment skipped consumer 0 for the first tuple) and
// fields grouping returning a structured RouteError instead of
// panicking on tuples narrower than the key field.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// shuffleGraph is spout -> work(x replicas) -> sink with shuffle
// grouping on both edges.
func shuffleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("shuffle")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "work", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "work", Stream: "default", Partitioning: graph.Shuffle})
	g.AddEdge(graph.Edge{From: "work", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runShuffle executes the shuffle pipeline with `replicas` work tasks
// over n tuples and returns the per-replica processed counts, indexed
// by replica creation order.
func runShuffle(t *testing.T, replicas, n int) []uint64 {
	t.Helper()
	counts := make([]atomic.Uint64, replicas)
	var replicaSeq atomic.Int32
	work := func() Operator {
		idx := int(replicaSeq.Add(1)) - 1
		return OperatorFunc(func(c Collector, tp *tuple.Tuple) error {
			counts[idx].Add(1)
			forwardTuple(c, tp)
			return nil
		})
	}
	topo := Topology{
		App:         shuffleGraph(t),
		Spouts:      map[string]func() Spout{"spout": boundedSpoutEOF(n)},
		Operators:   map[string]func() Operator{"work": work, "sink": sinkOp},
		Replication: map[string]int{"work": replicas},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	out := make([]uint64, replicas)
	for i := range counts {
		out[i] = counts[i].Load()
	}
	return out
}

func TestShuffleFirstTupleReachesReplicaZero(t *testing.T) {
	// One tuple, three replicas: round-robin must start at replica 0.
	// The old cursor pre-increment sent it to replica 1 and replica 0
	// only ever saw traffic once the cursor wrapped.
	counts := runShuffle(t, 3, 1)
	if counts[0] != 1 {
		t.Fatalf("first tuple went to counts=%v; shuffle must start at replica 0", counts)
	}
}

func TestShuffleDistributionUniform(t *testing.T) {
	const replicas = 4
	for _, n := range []int{replicas * 250, 999} {
		counts := runShuffle(t, replicas, n)
		var total, min, max uint64
		min = ^uint64(0)
		for _, c := range counts {
			total += c
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if total != uint64(n) {
			t.Fatalf("n=%d: processed %d tuples in total (counts=%v)", n, total, counts)
		}
		// A single round-robin cursor distributes exactly evenly, up to
		// the remainder of n/replicas.
		if max-min > 1 {
			t.Errorf("n=%d: skewed shuffle distribution %v (max-min=%d)", n, counts, max-min)
		}
	}
}

func TestFieldsShortTupleReturnsRouteError(t *testing.T) {
	// The fields edge declares key field 2, but the spout emits tuples
	// with a single value. The old dispatch indexed out of range and
	// panicked; now the run must shut down cleanly with a RouteError.
	g := graph.New("short")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "agg", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "agg", Stream: "default", Partitioning: graph.Fields, KeyField: 2})
	g.AddEdge(graph.Edge{From: "agg", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := Topology{
		App:       g,
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(100)},
		Operators: map[string]func() Operator{"agg": passthrough, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() { res, _ := e.Run(0); done <- res }()
	select {
	case res := <-done:
		var re *RouteError
		found := false
		for _, err := range res.Errors {
			if errors.As(err, &re) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no RouteError reported; errors = %v", res.Errors)
		}
		if re.KeyField != 2 || re.Width != 1 {
			t.Errorf("RouteError = %+v; want KeyField 2, Width 1", re)
		}
		if re.Task != "spout#0" || re.Stream != "default" {
			t.Errorf("RouteError identifies %q/%q; want spout#0/default", re.Task, re.Stream)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not shut down after routing error")
	}
}

// TestQueueStatsExposed checks the Result carries the inbox atomics.
func TestQueueStatsExposed(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuePuts == 0 || res.QueuePuts != res.QueueGets {
		t.Fatalf("queue stats puts=%d gets=%d; want equal and nonzero", res.QueuePuts, res.QueueGets)
	}
	// Jumbo batching: far fewer insertions than tuples moved.
	moved := res.Processed["double"] + res.SinkTuples
	if res.QueuePuts*8 > moved {
		t.Errorf("queue puts %d vs %d tuples moved; jumbo batching should amortize", res.QueuePuts, moved)
	}
}

// TestQueueCapacitySplitAcrossProducers: QueueCapacity bounds a task's
// whole input queue, so with N producers each per-producer ring gets
// QueueCapacity/N slots rather than N full queues of buffering.
func TestQueueCapacitySplitAcrossProducers(t *testing.T) {
	topo := Topology{
		App:         shuffleGraph(t),
		Spouts:      map[string]func() Spout{"spout": boundedSpoutEOF(1)},
		Operators:   map[string]func() Operator{"work": passthrough, "sink": sinkOp},
		Replication: map[string]int{"work": 4},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sink := e.byOp["sink"][0]
	rings := sink.in.Rings()
	if len(rings) != 4 {
		t.Fatalf("sink has %d rings, want 4", len(rings))
	}
	for _, r := range rings {
		if r.Cap() != 64/4 {
			t.Errorf("ring cap = %d, want %d (QueueCapacity/producers)", r.Cap(), 64/4)
		}
	}
	// Single-producer consumers keep the full budget.
	work := e.byOp["work"][0]
	if got := work.in.Rings()[0].Cap(); got != 64 {
		t.Errorf("single-producer ring cap = %d, want 64", got)
	}
}
