package engine

import (
	"testing"
	"time"
)

func TestWheelFiresInTimestampOrder(t *testing.T) {
	tm := NewTimers()
	for _, at := range []int64{50, 10, 30, 20, 40, 10} {
		tm.RegisterEvent(at)
	}
	var fired []int64
	if err := tm.AdvanceWatermark(35, func(at int64) error {
		fired = append(fired, at)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// The rest fires on the next advance; duplicates fired twice above.
	fired = fired[:0]
	tm.AdvanceWatermark(1000, func(at int64) error {
		fired = append(fired, at)
		return nil
	})
	if len(fired) != 2 || fired[0] != 40 || fired[1] != 50 {
		t.Fatalf("second advance fired %v, want [40 50]", fired)
	}
}

func TestWheelDistantTimerDoesNotFireEarly(t *testing.T) {
	// A timestamp whose slot hash collides with a near tick (one full
	// wheel round away) must survive until its own time.
	tm := NewTimers()
	tm.AdvanceWatermark(0, func(int64) error { return nil })
	near := int64(5)
	far := near + wheelSlots // same slot, next round
	tm.RegisterEvent(far)
	tm.RegisterEvent(near)
	var fired []int64
	tm.AdvanceWatermark(near, func(at int64) error {
		fired = append(fired, at)
		return nil
	})
	if len(fired) != 1 || fired[0] != near {
		t.Fatalf("fired %v, want [%d]", fired, near)
	}
	tm.AdvanceWatermark(far, func(at int64) error {
		fired = append(fired, at)
		return nil
	})
	if len(fired) != 2 || fired[1] != far {
		t.Fatalf("fired %v, want [... %d]", fired, far)
	}
}

func TestWheelHugeJumpIsSafe(t *testing.T) {
	tm := NewTimers()
	tm.AdvanceWatermark(-1_000_000_000_000, func(int64) error { return nil })
	tm.RegisterEvent(7)
	var fired []int64
	// A jump spanning nearly the whole int64 range must complete fast
	// (full-sweep path, not per-tick iteration) and fire everything due.
	tm.AdvanceWatermark(WatermarkMax, func(at int64) error {
		fired = append(fired, at)
		return nil
	})
	if len(fired) != 1 || fired[0] != 7 {
		t.Fatalf("fired %v, want [7]", fired)
	}
}

func TestWatermarkIsMonotonic(t *testing.T) {
	tm := NewTimers()
	tm.AdvanceWatermark(100, func(int64) error { return nil })
	if tm.Watermark() != 100 {
		t.Fatalf("wm = %d", tm.Watermark())
	}
	fired := 0
	tm.RegisterEvent(90)
	// A regressing advance is a no-op; the (already past-due) timer
	// fires on the next genuine advance.
	tm.AdvanceWatermark(50, func(int64) error { fired++; return nil })
	if tm.Watermark() != 100 || fired != 0 {
		t.Fatalf("regressed: wm=%d fired=%d", tm.Watermark(), fired)
	}
	tm.AdvanceWatermark(101, func(int64) error { fired++; return nil })
	if fired != 1 {
		t.Fatalf("past-due timer fired %d times", fired)
	}
}

func TestProcWheelNextDeadlineRecomputes(t *testing.T) {
	tm := NewTimers()
	base := time.Now()
	t1, t2 := base.Add(5*time.Millisecond), base.Add(80*time.Millisecond)
	tm.RegisterProcAt(t2)
	tm.RegisterProcAt(t1)
	if !tm.procPending() {
		t.Fatal("no pending proc timer")
	}
	if got := tm.nextProc(); got.After(t1) {
		t.Fatalf("nextProc %v after earliest %v", got, t1)
	}
	var fired []int64
	if err := tm.fireProcDue(t1, func(e wheelEntry) error {
		fired = append(fired, e.at)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != t1.UnixNano() {
		t.Fatalf("fired %v", fired)
	}
	// After the earliest fired, the deadline must move to t2 exactly —
	// a stale lower bound here would busy-wake the task loop.
	if got := tm.nextProc(); !got.Equal(time.Unix(0, t2.UnixNano())) {
		t.Fatalf("nextProc %v, want %v", got, t2)
	}
}

func TestTimersResetDropsPending(t *testing.T) {
	tm := NewTimers()
	tm.RegisterEvent(10)
	tm.RegisterProcAt(time.Now())
	tm.AdvanceWatermark(5, func(int64) error { return nil })
	tm.reset()
	if tm.Watermark() != int64(WatermarkMin) || tm.procPending() {
		t.Fatal("reset did not rewind")
	}
	fired := 0
	tm.AdvanceWatermark(100, func(int64) error { fired++; return nil })
	if fired != 0 {
		t.Fatalf("pre-reset timer survived: %d", fired)
	}
}

func TestRegisterEventSteadyStateAllocFree(t *testing.T) {
	tm := NewTimers()
	at := int64(0)
	// Warm the slot slices and the expired scratch.
	for i := 0; i < 4*wheelSlots; i++ {
		at++
		tm.RegisterEvent(at)
	}
	tm.AdvanceWatermark(at, func(int64) error { return nil })
	avg := testing.AllocsPerRun(2000, func() {
		at++
		tm.RegisterEvent(at)
		tm.AdvanceWatermark(at, func(int64) error { return nil })
	})
	if avg > 0.01 {
		t.Errorf("steady-state register+advance allocates %.3f/op, want 0", avg)
	}
}
