package engine

// Linger-flush regression: a low-rate stream must not strand tuples in
// partial jumbo batches until shutdown — the timer service flushes a
// partial batch after Config.Linger.

import (
	"testing"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// lingerTopology: spout -> fwd -> sink, exercising the linger flush on
// both a spout task (busy loop, polled timers) and an operator task
// (blocking inbox, deadline-bounded Get).
func lingerTopology(t *testing.T, emit int, cfg Config) *Engine {
	t.Helper()
	g := graph.New("linger")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "fwd", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "fwd", Stream: "default"})
	g.AddEdge(graph.Edge{From: "fwd", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			emitted := 0
			return SpoutFunc(func(c Collector) error {
				// Emit a handful of tuples immediately, then go quiet
				// without EOF: the classic stranded-partial-batch shape.
				if emitted < emit {
					emitted++
					out := c.Borrow()
					out.AppendInt(int64(emitted))
					c.Send(out)
				}
				return nil
			})
		}},
		Operators: map[string]func() Operator{
			"fwd": func() Operator {
				return OperatorFunc(func(c Collector, in *tuple.Tuple) error {
					forwardTuple(c, in)
					return nil
				})
			},
			"sink": func() Operator {
				return OperatorFunc(func(c Collector, in *tuple.Tuple) error { return nil })
			},
		},
	}
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runAndPollSink runs the engine for d and samples the sink counter at
// half time — what a consumer of the stream would have seen mid-run.
func runAndPollSink(t *testing.T, e *Engine, d time.Duration) (mid, final uint64) {
	t.Helper()
	done := make(chan *Result, 1)
	go func() {
		res, err := e.Run(d)
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(d / 2)
	mid = e.SinkCount()
	res := <-done
	if res != nil {
		if len(res.Errors) != 0 {
			t.Fatalf("errors: %v", res.Errors)
		}
		final = res.SinkTuples
	}
	return mid, final
}

func TestLingerFlushBoundsLowRateLatency(t *testing.T) {
	const n = 5
	cfg := DefaultConfig() // BatchSize 64 >> n: the batch never fills
	cfg.Linger = 2 * time.Millisecond
	e := lingerTopology(t, n, cfg)
	mid, final := runAndPollSink(t, e, 400*time.Millisecond)
	if mid != n {
		t.Errorf("sink saw %d/%d tuples mid-run; linger flush did not bound the batching delay", mid, n)
	}
	if final != n {
		t.Errorf("final sink count = %d, want %d", final, n)
	}
}

func TestNoLingerStrandsPartialBatch(t *testing.T) {
	// Control: with linger disabled the partial batch sits until the
	// run's shutdown flush — proving the previous test observes the
	// linger mechanism and not some other flush.
	const n = 5
	cfg := DefaultConfig()
	cfg.Linger = 0
	e := lingerTopology(t, n, cfg)
	mid, final := runAndPollSink(t, e, 400*time.Millisecond)
	if mid != 0 {
		t.Errorf("sink saw %d tuples mid-run with linger disabled; expected them stranded in the partial batch", mid)
	}
	if final != n {
		t.Errorf("final sink count = %d, want %d (shutdown flush)", final, n)
	}
}
