package engine

// Tests for the reverse-SPSC recycling rings wired between each
// (producer, consumer) task pair: tuples released by the consumer flow
// back to the producer's pool through the ring, composing with the
// Retain escape hatch, Kill/Reopen, and checkpoint restore without
// leaking or double-freeing a single tuple. The accounting tests rely
// on Config.TrackPools and Engine.PoolStats: after a clean EOF with
// every retained reference dropped, pool gets must equal pool puts.

import (
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// cappedSpout emits 1..limit; the test raises limit to finite-ize an
// endless stream after a kill (only while no run is in flight).
type cappedSpout struct {
	i, limit int64
}

func (s *cappedSpout) Next(c Collector) error {
	if s.i >= s.limit {
		return ioEOF
	}
	s.i++
	c.Emit(s.i)
	return nil
}

// TestReverseRingsCarryRecycledTuples: with rings enabled (the
// default), a clean run must park recycled tuples in the reverse rings
// — the consumer's final releases land after the producer's last Get,
// so a run that moved any tuples leaves a nonzero parked count. A zero
// here means every release took the sync.Pool fallback and the reverse
// path is dead code.
func TestReverseRingsCarryRecycledTuples(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(2000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	parked := 0
	for _, tk := range e.tasks {
		for _, r := range tk.rev {
			if r != nil {
				parked += r.Len()
			}
		}
	}
	if parked == 0 {
		t.Fatal("no tuples parked in any reverse ring after a 2000-tuple run")
	}
}

// TestRecycleRingsDisabled: RecycleRingCap < 0 must wire no rings and
// still run cleanly on the pure sync.Pool path.
func TestRecycleRingsDisabled(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.RecycleRingCap = -1
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range e.tasks {
		for _, r := range tk.rev {
			if r != nil {
				t.Fatal("reverse ring wired despite RecycleRingCap < 0")
			}
		}
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 2000 {
		t.Fatalf("sink tuples = %d, want 2000", res.SinkTuples)
	}
}

// TestRetainRecycleRingsAcrossKillAndRerun is the -race stress for the
// reverse path: sink replicas retain tuples and hand them to a side
// goroutine (whose plain Release must take the thread-safe sync.Pool
// route, never a ring), the engine is killed mid-run (stranding jumbos
// in closed rings and half-filled reverse rings), and a second run
// reopens everything and drains to EOF. With TrackPools on, the pool
// accounting must balance exactly once the side goroutine has drained.
func TestRetainRecycleRingsAcrossKillAndRerun(t *testing.T) {
	g := graph.New("retain-recycle")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "hold", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "hold", Stream: "default", Partitioning: graph.Shuffle})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	held := make(chan *tuple.Tuple, 256)
	sideDone := make(chan int64, 1)
	go func() {
		var released int64
		for tp := range held {
			_ = tp.Int(0)
			tp.Release()
			released++
		}
		sideDone <- released
	}()

	spout := &cappedSpout{limit: 1 << 62}
	topo := Topology{
		App:    g,
		Spouts: map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{
			"hold": func() Operator {
				i := 0
				return OperatorFunc(func(c Collector, tp *tuple.Tuple) error {
					if i++; i%4 == 0 {
						tp.Retain()
						held <- tp
					}
					return nil
				})
			},
		},
		Replication: map[string]int{"hold": 2},
	}
	cfg := DefaultConfig()
	cfg.QueueCapacity = 8 // small buffers: maximum pressure on the rings
	cfg.BatchSize = 16
	cfg.TrackPools = true
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: endless stream, killed mid-flight.
	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	if !waitFor(10*time.Second, func() bool { return e.SinkCount() > 2000 }) {
		t.Fatal("no progress before kill")
	}
	e.Kill()
	if res := <-done; len(res.Errors) != 0 {
		t.Fatalf("killed run errors: %v", res.Errors)
	}

	// Run 2: finite-ize the stream and drain to EOF. The reset must
	// release everything the kill stranded before reopening the rings.
	spout.limit = spout.i + 5000
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("rerun errors: %v", res.Errors)
	}

	close(held)
	if released := <-sideDone; released == 0 {
		t.Fatal("side goroutine released nothing: retain path untested")
	}
	gets, puts := e.PoolStats()
	if gets == 0 {
		t.Fatal("pool accounting empty despite TrackPools")
	}
	if gets != puts {
		t.Fatalf("pool accounting unbalanced after clean EOF: %d gets / %d puts (leaked or double-freed %d tuples)", gets, puts, int64(gets)-int64(puts))
	}
}

// TestPoolAccountingBalancesAcrossCheckpointRestore is the property
// test from the roadmap: run with periodic aligned checkpoints, kill
// mid-run, restore from the latest completed checkpoint, replay to a
// clean EOF — across the whole cycle (barriers, alignment parking,
// replay, reverse rings) no tuple may leak or double-free, i.e. pool
// gets == pool puts once the final run drains.
func TestPoolAccountingBalancesAcrossCheckpointRestore(t *testing.T) {
	co := checkpoint.NewCoordinator(nil)
	spout := &seqSpout{replica: 0, limit: 1 << 62}
	agg := newSumOp()
	topo := Topology{
		App:       sinkGraph(t, 1),
		Spouts:    map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{"agg": func() Operator { return agg }},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 2 * time.Millisecond
	cfg.QueueCapacity = 8
	cfg.BatchSize = 16
	cfg.TrackPools = true
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	if !waitFor(10*time.Second, func() bool { return co.Completed() >= 2 && e.SinkCount() > 0 }) {
		t.Fatal("no checkpoint completed within the deadline")
	}
	e.Kill()
	if res := <-done; len(res.Errors) != 0 {
		t.Fatalf("killed run errors: %v", res.Errors)
	}

	if _, err := e.Restore(); err != nil {
		t.Fatal(err)
	}
	limit := spout.i + 5000
	spout.limit = limit
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("recovery run errors: %v", res.Errors)
	}
	if wantSum := limit * (limit + 1) / 2; agg.sum != wantSum {
		t.Fatalf("recovered sum = %d, want %d", agg.sum, wantSum)
	}

	gets, puts := e.PoolStats()
	if gets == 0 {
		t.Fatal("pool accounting empty despite TrackPools")
	}
	if gets != puts {
		t.Fatalf("pool accounting unbalanced across checkpoint/restore: %d gets / %d puts (leaked or double-freed %d tuples)", gets, puts, int64(gets)-int64(puts))
	}
}
