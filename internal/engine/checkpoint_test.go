package engine

// Tests for the aligned-barrier checkpoint subsystem: completion across
// all tasks, the consistency of the aligned cut under multi-hop fan-out
// and fan-in, kill/restore/replay, and the property that checkpointing
// never drops, duplicates or reorders tuples and never breaks the
// watermark min-merge.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// seqSpout emits (replica, i) for i = 1..limit with event time i and a
// watermark every 16 tuples. It is replayable: the stream is a pure
// function of the cursor.
type seqSpout struct {
	replica int64
	i       int64
	limit   int64
}

func (s *seqSpout) Next(c Collector) error {
	if s.i >= s.limit {
		return ioEOF
	}
	s.i++
	out := c.Borrow()
	out.AppendInt(s.replica)
	out.AppendInt(s.i)
	out.Event = s.i
	c.Send(out)
	if s.i%16 == 0 {
		c.EmitWatermark(s.i)
	}
	return nil
}

func (s *seqSpout) Offset() int64 { return s.i }

func (s *seqSpout) SeekTo(offset int64) error {
	s.i = offset
	return nil
}

// sumOp aggregates the test stream: total sum of the sequence values
// plus a per-origin-replica tuple count. It snapshots both.
type sumOp struct {
	sum       int64
	perOrigin map[int64]int64
}

func newSumOp() *sumOp { return &sumOp{perOrigin: map[int64]int64{}} }

func (o *sumOp) Process(c Collector, t *tuple.Tuple) error {
	o.perOrigin[t.Int(0)]++
	o.sum += t.Int(1)
	return nil
}

func (o *sumOp) Snapshot(enc *checkpoint.Encoder) error {
	enc.Int64(o.sum)
	enc.Len(len(o.perOrigin))
	origins := make([]int64, 0, len(o.perOrigin))
	for k := range o.perOrigin {
		origins = append(origins, k)
	}
	for i := 1; i < len(origins); i++ { // insertion sort: tiny key sets
		for j := i; j > 0 && origins[j] < origins[j-1]; j-- {
			origins[j], origins[j-1] = origins[j-1], origins[j]
		}
	}
	for _, k := range origins {
		enc.Int64(k)
		enc.Int64(o.perOrigin[k])
	}
	return nil
}

func (o *sumOp) Restore(dec *checkpoint.Decoder) error {
	o.sum = dec.Int64()
	clear(o.perOrigin)
	n := dec.Len()
	for i := 0; i < n && dec.Err() == nil; i++ {
		k := dec.Int64()
		o.perOrigin[k] = dec.Int64()
	}
	return dec.Err()
}

// sinkGraph builds spout -> agg(sink).
func sinkGraph(t *testing.T, spoutRepl int) *graph.Graph {
	t.Helper()
	g := graph.New("ckpt")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "agg", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "agg", Stream: "default", Partitioning: graph.Global}))
	must(g.Validate())
	return g
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// TestCheckpointKillRestoreReplay is the engine-level recovery cycle:
// run with periodic checkpoints, kill mid-run, restore from the latest
// completed checkpoint, finish the (now finite) stream, and verify the
// final state equals an uninterrupted run's exactly.
func TestCheckpointKillRestoreReplay(t *testing.T) {
	co := checkpoint.NewCoordinator(nil)
	spout := &seqSpout{replica: 0, limit: 1 << 62}
	agg := newSumOp()
	topo := Topology{
		App:       sinkGraph(t, 1),
		Spouts:    map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{"agg": func() Operator { return agg }},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 2 * time.Millisecond
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	if !waitFor(10*time.Second, func() bool { return co.Completed() >= 2 && e.SinkCount() > 0 }) {
		t.Fatal("no checkpoint completed within the deadline")
	}
	e.Kill()
	res := <-done
	if len(res.Errors) != 0 {
		t.Fatalf("killed run reported errors: %v", res.Errors)
	}

	// The kill left the operator ahead of the checkpoint cut (or at it);
	// restore must rewind both the operator and the source.
	id, err := e.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 || id > co.LatestID() {
		t.Fatalf("restore id = %d, latest completed = %d", id, co.LatestID())
	}
	// Make the stream finite from wherever the killed run got to, then
	// let recovery replay to EOF.
	limit := spout.i + 10000
	spout.limit = limit
	res2, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Errors) != 0 {
		t.Fatalf("recovery run errors: %v", res2.Errors)
	}
	wantSum := limit * (limit + 1) / 2
	if agg.sum != wantSum {
		t.Fatalf("recovered sum = %d, want %d (sum 1..%d): replay diverged from the failure-free stream", agg.sum, wantSum, limit)
	}
	if agg.perOrigin[0] != limit {
		t.Fatalf("recovered tuple count = %d, want %d: tuples lost or duplicated across recovery", agg.perOrigin[0], limit)
	}
}

// TestCheckpointIdsAscendAcrossEngines is the regression for checkpoint
// id allocation: the coordinator (and its store) outlive the engine, so
// a fresh engine sharing the coordinator — a restarted process resuming
// after a crash — must allocate ids above the completed floor. An
// allocator restarting at 1 would have every Begin rejected and every
// ack dropped: the resumed run would silently never checkpoint again.
func TestCheckpointIdsAscendAcrossEngines(t *testing.T) {
	co := checkpoint.NewCoordinator(nil)
	mkEngine := func() *Engine {
		topo := Topology{
			App:       sinkGraph(t, 1),
			Spouts:    map[string]func() Spout{"spout": func() Spout { return &seqSpout{limit: 1 << 62} }},
			Operators: map[string]func() Operator{"agg": func() Operator { return newSumOp() }},
		}
		cfg := DefaultConfig()
		cfg.Checkpoint = co
		cfg.CheckpointInterval = 2 * time.Millisecond
		e, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	runUntil := func(e *Engine, completed uint64) {
		t.Helper()
		done := make(chan *Result, 1)
		go func() {
			res, _ := e.Run(0)
			done <- res
		}()
		if !waitFor(10*time.Second, func() bool { return co.Completed() >= completed }) {
			t.Fatalf("stuck at %d completed checkpoints, want >= %d (ids colliding with the coordinator's floor?)", co.Completed(), completed)
		}
		e.Kill()
		if res := <-done; len(res.Errors) != 0 {
			t.Fatal(res.Errors)
		}
	}
	runUntil(mkEngine(), 2)
	floor := co.LatestID()
	// The second engine must checkpoint ABOVE the first engine's ids.
	runUntil(mkEngine(), co.Completed()+2)
	if co.LatestID() <= floor {
		t.Fatalf("latest completed id %d did not advance past the first engine's %d", co.LatestID(), floor)
	}
}

// TestCoordinatorSeedsFloorFromStore covers the cross-process variant:
// a coordinator opened over a store holding a dead run's checkpoints
// must hand engines an id floor above them, or the new run's low-id
// files would lose Latest() to the stale ones.
func TestCoordinatorSeedsFloorFromStore(t *testing.T) {
	store := checkpoint.NewMemoryStore()
	if err := store.Save(&checkpoint.Checkpoint{ID: 41, Tasks: map[string][]byte{"spout#0": nil}}); err != nil {
		t.Fatal(err)
	}
	co := checkpoint.NewCoordinator(store)
	if co.LatestID() != 41 {
		t.Fatalf("coordinator floor = %d, want 41 (seeded from the store)", co.LatestID())
	}
	spout := &seqSpout{limit: 1 << 62}
	topo := Topology{
		App:       sinkGraph(t, 1),
		Spouts:    map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{"agg": func() Operator { return newSumOp() }},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	// TriggerCheckpoint is defined for a running engine: a request
	// published before Run's reset is treated as stale. Wait for the
	// pipeline to demonstrably flow first.
	if !waitFor(10*time.Second, func() bool { return e.SinkCount() > 0 }) {
		t.Fatal("pipeline never started")
	}
	id := e.TriggerCheckpoint()
	if id <= 41 {
		t.Fatalf("triggered id %d, want > 41", id)
	}
	if !waitFor(10*time.Second, func() bool { return co.LatestID() == id }) {
		t.Fatalf("checkpoint %d never completed (floor seeding broken?)", id)
	}
	e.Kill()
	<-done
	cp, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if cp.ID != id {
		t.Fatalf("store latest = %d, want the new run's %d — the stale checkpoint shadowed it", cp.ID, id)
	}
}

// TestAlignedCutConsistency drives a diamond (2 spouts -> 2 forwarding
// mids -> 1 aggregate) and checks the defining property of the aligned
// snapshot: for every completed checkpoint, the aggregate's per-origin
// tuple counts equal exactly the offsets the sources recorded — the cut
// contains a source's pre-barrier tuples, all of them, and nothing
// after, no matter how the two mid replicas interleaved them.
func TestAlignedCutConsistency(t *testing.T) {
	g := graph.New("diamond")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "mid", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "agg", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "mid", Stream: "default"})) // shuffle
	must(g.AddEdge(graph.Edge{From: "mid", To: "agg", Stream: "default", Partitioning: graph.Global}))
	must(g.Validate())

	co := checkpoint.NewCoordinator(nil)
	var spoutN atomic.Int64
	agg := newSumOp()
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return &seqSpout{replica: spoutN.Add(1) - 1, limit: 1 << 62}
		}},
		Operators: map[string]func() Operator{
			"mid": passthrough,
			"agg": func() Operator { return agg },
		},
		Replication: map[string]int{"spout": 2, "mid": 2},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 2 * time.Millisecond
	// Small batches so barriers interleave with partial jumbos too.
	cfg.BatchSize = 8
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	if !waitFor(10*time.Second, func() bool { return co.Completed() >= 3 }) {
		t.Fatal("checkpoints did not complete")
	}
	e.Kill()
	res := <-done
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}

	cp, err := co.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no completed checkpoint")
	}
	// Decode the source offsets from the spout snapshots.
	offsets := map[int64]int64{}
	for r := 0; r < 2; r++ {
		dec := checkpoint.NewDecoder(cp.Tasks[fmt.Sprintf("spout#%d", r)])
		if !dec.Bool() {
			t.Fatalf("spout#%d snapshot not replayable", r)
		}
		offsets[int64(r)] = dec.Int64()
		if dec.Err() != nil {
			t.Fatal(dec.Err())
		}
	}
	// Decode the aggregate's per-origin counts (engine framing: wm,
	// hasSnapshot, operator payload).
	dec := checkpoint.NewDecoder(cp.Tasks["agg#0"])
	_ = dec.Int64() // task watermark
	if !dec.Bool() {
		t.Fatal("agg snapshot missing")
	}
	restored := newSumOp()
	if err := restored.Restore(dec); err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 2; r++ {
		if restored.perOrigin[r] != offsets[r] {
			t.Fatalf("aligned cut inconsistent for origin %d: aggregate saw %d tuples, source recorded offset %d\n(checkpoint %d, all origins %v vs offsets %v)",
				r, restored.perOrigin[r], offsets[r], cp.ID, restored.perOrigin, offsets)
		}
	}
	// The cut must also balance the sums: sum over both origins of
	// 1..offset equals the snapshot's total.
	want := int64(0)
	for _, off := range offsets {
		want += off * (off + 1) / 2
	}
	if restored.sum != want {
		t.Fatalf("aligned sum = %d, want %d", restored.sum, want)
	}
}

// orderCheckOp asserts per-origin sequence integrity: under
// checkpointing, every origin's tuples must arrive gapless and in
// order (fields partitioning pins an origin to one replica, and
// per-edge FIFO plus alignment replay must preserve its stream).
type orderCheckOp struct {
	lastSeq  map[int64]int64
	lastWm   int64
	violated atomic.Pointer[string]
	total    atomic.Int64
}

func (o *orderCheckOp) Process(c Collector, t *tuple.Tuple) error {
	origin, seq := t.Int(0), t.Int(1)
	if want := o.lastSeq[origin] + 1; seq != want {
		msg := fmt.Sprintf("origin %d: seq %d after %d (dropped or reordered)", origin, seq, o.lastSeq[origin])
		o.violated.Store(&msg)
	}
	o.lastSeq[origin] = seq
	o.total.Add(1)
	forwardTuple(c, t)
	return nil
}

func (o *orderCheckOp) OnWatermark(c Collector, wm int64) error {
	if wm < o.lastWm {
		msg := fmt.Sprintf("watermark regressed: %d after %d", wm, o.lastWm)
		o.violated.Store(&msg)
	}
	o.lastWm = wm
	return nil
}

// TestCheckpointNeverDropsOrReordersTuples is the satellite property
// test: an aggressive barrier cadence (a checkpoint every millisecond,
// landing between, inside and across jumbo batches) must not disturb
// the data path — per-origin sequences stay gapless and ordered through
// a bounded shuffle, watermarks keep min-merging monotonically, and the
// sink sees exactly every emitted tuple.
func TestCheckpointNeverDropsOrReordersTuples(t *testing.T) {
	g := graph.New("prop")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "check", Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "check", Stream: "default", Partitioning: graph.Fields, KeyField: 0}))
	must(g.AddEdge(graph.Edge{From: "check", To: "sink", Stream: "default", Partitioning: graph.Global}))
	must(g.Validate())

	const spouts = 4
	const perSpout = 60000
	co := checkpoint.NewCoordinator(nil)
	var spoutN atomic.Int64
	checks := []*orderCheckOp{}
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return &seqSpout{replica: spoutN.Add(1) - 1, limit: perSpout}
		}},
		Operators: map[string]func() Operator{
			"check": func() Operator {
				op := &orderCheckOp{lastSeq: map[int64]int64{}, lastWm: WatermarkMin}
				checks = append(checks, op)
				return op
			},
			"sink": sinkOp,
		},
		Replication: map[string]int{"spout": spouts, "check": 2},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = time.Millisecond
	cfg.BatchSize = 16 // barriers hit partial batches often
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if co.Completed() == 0 {
		t.Fatal("property run completed no checkpoint — cadence too slow to test anything")
	}
	total := int64(0)
	perOrigin := map[int64]int64{}
	for _, op := range checks {
		if msg := op.violated.Load(); msg != nil {
			t.Fatal(*msg)
		}
		total += op.total.Load()
		for origin, last := range op.lastSeq {
			perOrigin[origin] += last
		}
	}
	if total != spouts*perSpout {
		t.Fatalf("checker saw %d tuples, want %d: checkpointing dropped or duplicated data", total, spouts*perSpout)
	}
	for origin := int64(0); origin < spouts; origin++ {
		if perOrigin[origin] != perSpout {
			t.Fatalf("origin %d final seq = %d, want %d", origin, perOrigin[origin], perSpout)
		}
	}
	if res.SinkTuples != spouts*perSpout {
		t.Fatalf("sink received %d, want %d", res.SinkTuples, spouts*perSpout)
	}
	// Watermarks survived the barrier traffic: the checkers' final
	// watermark reached the EOF flush.
	for i, op := range checks {
		if op.lastWm != WatermarkMax {
			t.Fatalf("check#%d final watermark = %d, want WatermarkMax", i, op.lastWm)
		}
	}
}

// eofSignalSpout flags (race-safely) when the wrapped source EOFs.
type eofSignalSpout struct {
	*seqSpout
	done *atomic.Bool
}

func (s *eofSignalSpout) Next(c Collector) error {
	err := s.seqSpout.Next(c)
	if err == ioEOF {
		s.done.Store(true)
	}
	return err
}

// TestCheckpointSurvivesFinishedSource: after one of two sources EOFs,
// checkpoints triggered on the live source must still align (the dead
// edge is excluded via the done marker) — without the exclusion the
// consumer would park the live source's input forever, stalling the
// pipeline and growing memory unboundedly.
func TestCheckpointSurvivesFinishedSource(t *testing.T) {
	co := checkpoint.NewCoordinator(nil)
	var shortDone atomic.Bool
	short := &eofSignalSpout{seqSpout: &seqSpout{replica: 0, limit: 100}, done: &shortDone} // EOFs almost immediately
	long := &seqSpout{replica: 1, limit: 1 << 62}
	g := graph.New("mixed")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "a", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "b", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "agg", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "a", To: "agg", Stream: "default", Partitioning: graph.Global}))
	must(g.AddEdge(graph.Edge{From: "b", To: "agg", Stream: "default", Partitioning: graph.Global}))
	must(g.Validate())
	agg := newSumOp()
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{
			"a": func() Spout { return short },
			"b": func() Spout { return long },
		},
		Operators: map[string]func() Operator{"agg": func() Operator { return agg }},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 2 * time.Millisecond
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	// Wait until the short source certainly finished, then demand that
	// MORE sink progress happens and checkpoints keep completing: both
	// fail if alignment parks (or permanently waits on) the dead edge.
	if !waitFor(10*time.Second, func() bool { return shortDone.Load() }) {
		t.Fatal("short source never finished")
	}
	base := e.SinkCount()
	baseCkpt := co.Completed()
	if !waitFor(10*time.Second, func() bool {
		return e.SinkCount() > base+50000 && co.Completed() > baseCkpt+2
	}) {
		t.Fatalf("pipeline stalled after source EOF: sink %d->%d, checkpoints %d->%d (alignment parked the live edge?)",
			base, e.SinkCount(), baseCkpt, co.Completed())
	}
	e.Kill()
	res := <-done
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
}
