package engine

// Watermark-semantics coverage: punctuations broadcast across replicas
// on shuffle and fields grouping, min-merge at fan-in, idle-source
// exclusion, event-timer delivery on the execution thread, and the
// final-watermark flush on finite streams.

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// wmAction scripts one step of a scripted spout.
type wmAction struct {
	emit int64 // event time to emit a tuple at (when emitTuple)
	wm   int64 // watermark to emit (when !emitTuple)
	tup  bool
}

func tupAt(et int64) wmAction { return wmAction{emit: et, tup: true} }
func wmAt(wm int64) wmAction  { return wmAction{wm: wm} }

// scriptedSpout replays its actions once, then returns io.EOF — or, if
// spin is set, keeps returning without emitting (an open-ended source)
// until the run's duration bound stops the engine.
type scriptedSpout struct {
	actions []wmAction
	i       int
	spin    bool
}

func (s *scriptedSpout) Next(c Collector) error {
	if s.i >= len(s.actions) {
		if s.spin {
			return nil
		}
		return io.EOF
	}
	a := s.actions[s.i]
	s.i++
	if a.tup {
		out := c.Borrow()
		out.AppendInt(a.emit)
		out.Event = a.emit
		c.Send(out)
	} else {
		c.EmitWatermark(a.wm)
	}
	return nil
}

// wmProbe records the watermark advances and timer fires its replica
// observes; registrations are scripted via timersAt.
type wmProbe struct {
	mu       *sync.Mutex
	log      *[][]string // per replica
	replica  int
	tm       *Timers
	timersAt []int64
}

func (p *wmProbe) SetTimers(tm *Timers) { p.tm = tm }

func (p *wmProbe) Process(c Collector, t *tuple.Tuple) error {
	for _, at := range p.timersAt {
		p.tm.RegisterEvent(at)
	}
	p.timersAt = nil
	return nil
}

func (p *wmProbe) record(s string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(*p.log) <= p.replica {
		*p.log = append(*p.log, nil)
	}
	(*p.log)[p.replica] = append((*p.log)[p.replica], s)
}

func (p *wmProbe) OnTimer(c Collector, kind TimerKind, at int64) error {
	if kind == EventTimer {
		p.record(sprintf("timer:%d", at))
	}
	return nil
}

func (p *wmProbe) OnWatermark(c Collector, wm int64) error {
	if wm == WatermarkMax {
		p.record("wm:max")
	} else {
		p.record(sprintf("wm:%d", wm))
	}
	return nil
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// runProbe builds spouts (by name) -> "probe" (replicas, part) -> sink
// and runs it to completion (spouts EOF after their script, triggering
// the final watermark), returning the per-replica logs.
func runProbe(t *testing.T, spoutScripts map[string][]wmAction, replicas int, part graph.Partitioning, timersAt []int64) [][]string {
	t.Helper()
	return runProbeMode(t, spoutScripts, replicas, part, timersAt, 0)
}

// runProbeMode with d > 0 keeps exhausted spouts spinning (no EOF, no
// final watermark) and stops the run after d instead.
func runProbeMode(t *testing.T, spoutScripts map[string][]wmAction, replicas int, part graph.Partitioning, timersAt []int64, d time.Duration) [][]string {
	t.Helper()
	g := graph.New("wmtest")
	for name := range spoutScripts {
		if err := g.AddNode(&graph.Node{Name: name, IsSpout: true, Selectivity: map[string]float64{"default": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddNode(&graph.Node{Name: "probe", Selectivity: map[string]float64{"default": 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&graph.Node{Name: "sink", IsSink: true}); err != nil {
		t.Fatal(err)
	}
	for name := range spoutScripts {
		if err := g.AddEdge(graph.Edge{From: name, To: "probe", Stream: "default", Partitioning: part, KeyField: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(graph.Edge{From: "probe", To: "sink", Stream: "default"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var log [][]string
	nextReplica := 0
	spouts := map[string]func() Spout{}
	for name, script := range spoutScripts {
		script := script
		spouts[name] = func() Spout { return &scriptedSpout{actions: script, spin: d > 0} }
	}
	topo := Topology{
		App:    g,
		Spouts: spouts,
		Operators: map[string]func() Operator{
			"probe": func() Operator {
				p := &wmProbe{mu: &mu, log: &log, replica: nextReplica, timersAt: timersAt}
				nextReplica++
				return p
			},
			"sink": func() Operator {
				return OperatorFunc(func(c Collector, t *tuple.Tuple) error { return nil })
			},
		},
		Replication: map[string]int{"probe": replicas},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	for len(log) < replicas {
		log = append(log, nil)
	}
	return log
}

func assertLog(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log = %v, want %v", got, want)
		}
	}
}

// TestWatermarkMinMergeAtFanIn: a lagging producer pins the fan-in's
// watermark no matter how far the fast producer runs ahead. The spouts
// never EOF (no final watermark), so the laggard's 50 bounds the merge
// for the whole run — the only advance any interleaving can produce.
func TestWatermarkMinMergeAtFanIn(t *testing.T) {
	log := runProbeMode(t, map[string][]wmAction{
		"src_fast": {tupAt(1), wmAt(100), wmAt(200), wmAt(300)},
		"src_slow": {tupAt(2), wmAt(50)},
	}, 1, graph.Shuffle, nil, 250*time.Millisecond)
	assertLog(t, log[0], "wm:50")
}

// TestWatermarkSingleSourceAdvances: with one producer the merge is the
// identity and every scripted advance is observed, in order.
func TestWatermarkSingleSourceAdvances(t *testing.T) {
	log := runProbe(t, map[string][]wmAction{
		"src": {tupAt(1), wmAt(50), wmAt(100), wmAt(300)},
	}, 1, graph.Shuffle, nil)
	assertLog(t, log[0], "wm:50", "wm:100", "wm:300", "wm:max")
}

// TestWatermarkBroadcastAcrossReplicas: every replica of a fields- and a
// shuffle-grouped consumer sees every watermark, even though each data
// tuple reaches exactly one replica.
func TestWatermarkBroadcastAcrossReplicas(t *testing.T) {
	for _, part := range []graph.Partitioning{graph.Shuffle, graph.Fields} {
		log := runProbe(t, map[string][]wmAction{
			"src": {tupAt(1), tupAt(2), tupAt(3), wmAt(10), wmAt(20)},
		}, 3, part, nil)
		for r := 0; r < 3; r++ {
			assertLog(t, log[r], "wm:10", "wm:20", "wm:max")
		}
	}
}

// TestWatermarkIdleSourceExcluded: an idle source must not hold back
// event time for the fan-in; the active source alone drives it. The
// spouts never EOF, so without idle exclusion no advance at all could
// be observed (the idle source never reports an ordinary watermark).
func TestWatermarkIdleSourceExcluded(t *testing.T) {
	log := runProbeMode(t, map[string][]wmAction{
		"active": {tupAt(1), wmAt(100), wmAt(150)},
		"idle":   {wmAt(WatermarkIdle)},
	}, 1, graph.Shuffle, nil, 250*time.Millisecond)
	// Arrival order of the idle marker vs. the active watermarks decides
	// whether 100 is observed as its own advance, so assert the
	// invariants: monotone advances ending at 150.
	got := log[0]
	if len(got) == 0 {
		t.Fatal("no advance observed: idle source held back the merge")
	}
	if got[len(got)-1] != "wm:150" {
		t.Fatalf("log = %v, want last advance wm:150", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("log = %v: advances not increasing", got)
		}
	}
}

// TestEventTimersFireOnAdvance: timers registered during Process fire
// in order, before the same advance's OnWatermark notification, and
// exactly once.
func TestEventTimersFireOnAdvance(t *testing.T) {
	log := runProbe(t, map[string][]wmAction{
		"src": {tupAt(1), wmAt(15), wmAt(40)},
	}, 1, graph.Shuffle, []int64{30, 10})
	assertLog(t, log[0],
		"timer:10", "wm:15", // advance to 15 fires the 10-timer first
		"timer:30", "wm:40", // advance to 40 fires the 30-timer
		"wm:max",
	)
}

// timedSpout registers an event timer, emits a watermark beyond it,
// then EOFs; it records its OnTimer callbacks.
type timedSpout struct {
	tm    *Timers
	fired *[]int64
	step  int
}

func (s *timedSpout) SetTimers(tm *Timers) { s.tm = tm }

func (s *timedSpout) Next(c Collector) error {
	switch s.step {
	case 0:
		s.tm.RegisterEvent(25)
		s.tm.RegisterEvent(75)
		out := c.Borrow()
		out.AppendInt(1)
		out.Event = 1
		c.Send(out)
	case 1:
		c.EmitWatermark(50) // past the 25-timer, before the 75-timer
	default:
		return io.EOF // final watermark fires the rest
	}
	s.step++
	return nil
}

func (s *timedSpout) OnTimer(c Collector, kind TimerKind, at int64) error {
	if kind == EventTimer {
		*s.fired = append(*s.fired, at)
	}
	return nil
}

// TestSpoutEventTimersFire: a source's own event wheel advances on its
// emitted watermarks — no punctuation ever flows INTO a source, so
// EmitWatermark itself must drive its timers.
func TestSpoutEventTimersFire(t *testing.T) {
	g := graph.New("spouttimer")
	g.AddNode(&graph.Node{Name: "src", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "src", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var fired []int64
	topo := Topology{
		App:    g,
		Spouts: map[string]func() Spout{"src": func() Spout { return &timedSpout{fired: &fired} }},
		Operators: map[string]func() Operator{
			"sink": func() Operator {
				return OperatorFunc(func(c Collector, tp *tuple.Tuple) error { return nil })
			},
		},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(fired) != 2 || fired[0] != 25 || fired[1] != 75 {
		t.Fatalf("spout timers fired %v, want [25 75] (25 at wm 50, 75 at the EOF flush)", fired)
	}
}

// TestFinalWatermarkFlushesOnEOF: a timer far beyond any emitted
// watermark still fires when the finite stream ends.
func TestFinalWatermarkFlushesOnEOF(t *testing.T) {
	log := runProbe(t, map[string][]wmAction{
		"src": {tupAt(1)},
	}, 1, graph.Shuffle, []int64{1 << 40})
	assertLog(t, log[0], sprintf("timer:%d", int64(1<<40)), "wm:max")
}
