package engine

import (
	"math"
	"slices"
	"time"
)

// Event-time sentinels. Watermarks are int64 event-time units
// (milliseconds by convention, matching tuple.Tuple.Event).
const (
	// WatermarkMin is the initial watermark: no event-time progress yet.
	WatermarkMin = math.MinInt64
	// WatermarkMax is the largest ordinary watermark. A spout that
	// returns io.EOF has it broadcast on its behalf, so finite streams
	// flush every open window at shutdown.
	WatermarkMax = math.MaxInt64 - 1
	// WatermarkIdle marks a source (or a fully idle upstream subgraph)
	// as idle: an idle input is excluded from the fan-in min-merge so it
	// cannot hold back event time for the whole pipeline. A source
	// resumes by emitting an ordinary watermark.
	WatermarkIdle = math.MaxInt64
)

// TimerKind distinguishes the two timer domains of the service.
type TimerKind uint8

const (
	// EventTimer fires when the task's event-time watermark passes the
	// registered timestamp. Event timers never consult the wall clock.
	EventTimer TimerKind = iota
	// ProcTimer fires when wall-clock time passes the registered
	// instant (registered as time.Time, delivered as UnixNano).
	ProcTimer
)

// TimerHandler is implemented by operators (or spouts) that want OnTimer
// callbacks. OnTimer runs on the task's execution goroutine, so handlers
// may touch operator state without synchronization and emit through the
// collector like Process does.
//
// The per-task wheel is shared (operator fusion composes handlers, and
// registrations are not deduplicated), so OnTimer may be invoked for a
// timestamp the handler did not register; handlers must treat unknown
// timestamps as no-ops.
type TimerHandler interface {
	OnTimer(c Collector, kind TimerKind, at int64) error
}

// TimerAware is implemented by operators (or spouts) that need the
// task's timer service; the engine injects it before the run starts.
type TimerAware interface {
	SetTimers(tm *Timers)
}

// WatermarkHandler is implemented by operators that want to observe
// every watermark advance of their task (after due event timers fired).
// Most operators should register event timers instead.
type WatermarkHandler interface {
	OnWatermark(c Collector, wm int64) error
}

// wheelEntry is one pending timer. Operator timers carry edge ==
// operatorEdge; the engine's jumbo linger-flush timers carry the index
// of the output edge whose partial batch should flush, plus the batch's
// sequence number (a stale entry whose batch already flushed full is
// skipped); barrier-alignment timeout timers carry alignTimeoutEdge
// plus the alignment attempt they were armed for.
type wheelEntry struct {
	at   int64
	edge int32
	seq  uint32
}

// Sentinel edge values for engine-internal processing-time timers.
const (
	operatorEdge     int32 = -1
	alignTimeoutEdge int32 = -2
)

// wheel is a hashed timer wheel: pending timers hash into
// power-of-two slots by timestamp/tick, and advancing from time a to
// time b visits only the slots in that tick range (or each slot once,
// when the range wraps the wheel). Insertion and expiry are O(1)
// amortized regardless of how far timestamps are spread, which is why
// timer wheels — not heaps — back OS and network-stack timers.
type wheel struct {
	slots [][]wheelEntry
	mask  int64
	tick  int64
	cur   int64 // all entries at <= cur have fired
	n     int
	min   int64 // lower bound on the earliest pending timestamp
}

const wheelSlots = 256 // power of two

func (w *wheel) init(tick int64) {
	w.slots = make([][]wheelEntry, wheelSlots)
	w.mask = wheelSlots - 1
	w.tick = tick
	w.cur = math.MinInt64
	w.min = math.MaxInt64
}

// reset drops all pending timers and rewinds the wheel (between runs).
func (w *wheel) reset() {
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
	w.cur = math.MinInt64
	w.n = 0
	w.min = math.MaxInt64
}

// slotOf maps a timestamp to its slot index. Timestamps at or before
// cur hash to the slot just past cur so the next advance fires them.
func (w *wheel) slotOf(at int64) int64 {
	if at <= w.cur {
		at = w.cur + 1
	}
	return (at / w.tick) & w.mask
}

func (w *wheel) add(e wheelEntry) {
	s := w.slotOf(e.at)
	w.slots[s] = append(w.slots[s], e)
	w.n++
	if e.at < w.min {
		w.min = e.at
	}
}

// advance moves the wheel to `to`, appending every entry with at <= to
// into *out sorted by timestamp (registration order breaks ties), so
// callers fire timers in deterministic time order.
func (w *wheel) advance(to int64, out *[]wheelEntry) {
	if to <= w.cur {
		return
	}
	if w.n == 0 {
		w.cur = to
		return
	}
	fired := len(*out)
	delta := to/w.tick - w.cur/w.tick
	if w.cur == math.MinInt64 || delta < 0 /* overflowed: huge range */ || delta >= int64(len(w.slots)) {
		// The range covers the whole wheel: sweep each slot once.
		for i := range w.slots {
			w.drainSlot(i, to, out)
		}
	} else {
		for tk := w.cur / w.tick; tk <= to/w.tick; tk++ {
			w.drainSlot(int(tk&w.mask), to, out)
		}
	}
	w.cur = to
	if w.min <= to {
		// The old minimum fired; recompute exactly (O(slots+n), and only
		// on sweeps that fired something) so deadline-based parking never
		// busy-wakes on a stale lower bound.
		w.min = math.MaxInt64
		for _, slot := range w.slots {
			for _, e := range slot {
				if e.at < w.min {
					w.min = e.at
				}
			}
		}
	}
	expired := (*out)[fired:]
	slices.SortStableFunc(expired, func(a, b wheelEntry) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		}
		return 0
	})
}

// drainSlot moves the slot's due entries into *out, keeping the rest
// (entries hashed here from later wheel rounds).
func (w *wheel) drainSlot(i int, to int64, out *[]wheelEntry) {
	slot := w.slots[i]
	kept := slot[:0]
	for _, e := range slot {
		if e.at <= to {
			*out = append(*out, e)
			w.n--
		} else {
			kept = append(kept, e)
		}
	}
	w.slots[i] = kept
}

// Timers is the per-task timer service: a hashed timer wheel per time
// domain (event time driven by watermarks, processing time driven by
// the wall clock) plus the task's current event-time watermark. The
// engine owns one per task and fires due timers on the task's execution
// goroutine; operators reach it by implementing TimerAware.
//
// Timers is not safe for concurrent use — like operator state, it
// belongs to the task goroutine.
type Timers struct {
	wm      int64
	idle    bool // the task's merged input went all-idle
	event   wheel
	proc    wheel
	expired []wheelEntry // reusable scratch for advance/fire
}

// NewTimers builds a detached service (the engine builds one per task;
// operator harnesses and tests may drive one directly). Event timers
// tick in single event-time units, processing timers in milliseconds.
func NewTimers() *Timers {
	tm := &Timers{wm: WatermarkMin}
	tm.event.init(1)
	tm.proc.init(int64(time.Millisecond))
	return tm
}

// Watermark returns the task's current event-time watermark
// (WatermarkMin before any watermark arrived).
func (tm *Timers) Watermark() int64 { return tm.wm }

// RegisterEvent schedules an event-time timer: OnTimer(EventTimer, at)
// fires once the task's watermark reaches at. Registrations are not
// deduplicated; a timestamp registered twice fires twice.
func (tm *Timers) RegisterEvent(at int64) {
	tm.event.add(wheelEntry{at: at, edge: operatorEdge})
}

// RegisterProcAt schedules a processing-time timer:
// OnTimer(ProcTimer, at.UnixNano()) fires once the wall clock passes at.
func (tm *Timers) RegisterProcAt(at time.Time) {
	tm.proc.add(wheelEntry{at: at.UnixNano(), edge: operatorEdge})
}

// registerLinger schedules the engine-internal flush timer for a
// partial jumbo batch: output edge index plus the batch sequence the
// timer belongs to.
func (tm *Timers) registerLinger(edge int, seq uint32, at time.Time) {
	tm.proc.add(wheelEntry{at: at.UnixNano(), edge: int32(edge), seq: seq})
}

// registerAlignTimeout schedules the engine-internal barrier-alignment
// deadline for alignment attempt seq (see Config.AlignTimeout).
func (tm *Timers) registerAlignTimeout(seq uint32, at time.Time) {
	tm.proc.add(wheelEntry{at: at.UnixNano(), edge: alignTimeoutEdge, seq: seq})
}

// AdvanceWatermark advances the service to wm and invokes fire for
// every due event timer in timestamp order. The engine calls it when a
// task's merged input watermark advances; operator harnesses (profiling,
// unit tests) call it directly to drive timer-driven operators without
// an engine. A fire error stops the sweep and is returned; the
// remaining due timers are lost with the failed task.
func (tm *Timers) AdvanceWatermark(wm int64, fire func(at int64) error) error {
	if wm <= tm.wm {
		return nil
	}
	tm.wm = wm
	tm.expired = tm.expired[:0]
	tm.event.advance(wm, &tm.expired)
	for _, e := range tm.expired {
		if err := fire(e.at); err != nil {
			return err
		}
	}
	return nil
}

// procPending reports whether any processing-time timer is outstanding.
func (tm *Timers) procPending() bool { return tm.proc.n > 0 }

// nextProc returns the earliest processing-time deadline. Only valid
// while procPending; the bound is conservative (never later than the
// true earliest deadline), which can wake the task early but never
// late.
func (tm *Timers) nextProc() time.Time {
	return time.Unix(0, tm.proc.min)
}

// fireProcDue advances the processing-time wheel to now and invokes
// fire for every due entry in timestamp order.
func (tm *Timers) fireProcDue(now time.Time, fire func(e wheelEntry) error) error {
	tm.expired = tm.expired[:0]
	tm.proc.advance(now.UnixNano(), &tm.expired)
	for _, e := range tm.expired {
		if err := fire(e); err != nil {
			return err
		}
	}
	return nil
}

// reset rewinds the service between engine runs.
func (tm *Timers) reset() {
	tm.wm = WatermarkMin
	tm.idle = false
	tm.event.reset()
	tm.proc.reset()
}
