package engine

import (
	"runtime"

	"briskstream/internal/numa"
)

// pinThread locks the calling goroutine to its OS thread and binds the
// thread to the given CPU set. It returns the undo function — restore
// the original affinity mask, then unlock — or nil if pinning failed
// (the task then runs unpinned; never half-pinned). Restoring the mask
// before UnlockOSThread matters for Run reusability: the runtime reuses
// the thread for arbitrary goroutines afterwards, and a leaked narrow
// mask would silently serialize unrelated work.
func pinThread(cpus []int) func() {
	if len(cpus) == 0 {
		return nil
	}
	runtime.LockOSThread()
	prev, err := numa.Affinity()
	if err != nil || len(prev) == 0 {
		runtime.UnlockOSThread()
		return nil
	}
	if err := numa.SetAffinity(cpus); err != nil {
		runtime.UnlockOSThread()
		return nil
	}
	return func() {
		_ = numa.SetAffinity(prev)
		runtime.UnlockOSThread()
	}
}
