package engine

// Config.ValidateEvery is the schema debug mode: every tuple is checked
// against its route's declared schema, not just the first per route, so
// an operator whose tuple layout drifts after its first emit fails
// loudly instead of corrupting downstream state.

import (
	"io"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// driftingSpout emits a schema-correct (int) tuple first, then switches
// to a wrong layout (str) — the drift only ValidateEvery catches.
func driftingSpout(n int64) func() Spout {
	return func() Spout {
		var emitted int64
		return SpoutFunc(func(c Collector) error {
			if emitted >= n {
				return io.EOF
			}
			emitted++
			out := c.Borrow()
			if emitted == 1 {
				out.AppendInt(emitted)
			} else {
				out.AppendStr("drift")
			}
			c.Send(out)
			return nil
		})
	}
}

func validateTopology(t *testing.T, n int64) Topology {
	t.Helper()
	g := graph.New("drift")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "sink", Stream: "default"}))
	must(g.Validate())
	return Topology{
		App:       g,
		Spouts:    map[string]func() Spout{"spout": driftingSpout(n)},
		Operators: map[string]func() Operator{"sink": sinkOp},
		Schemas: map[string]map[string]*tuple.Schema{
			"spout": {"default": tuple.NewSchema(tuple.IntField("v"))},
		},
	}
}

func TestValidateEveryCatchesSchemaDrift(t *testing.T) {
	// First-tuple mode: only the first tuple is checked, the drift
	// passes. Pinned off explicitly — DefaultConfig honours
	// BRISK_VALIDATE_EVERY, which the race suites set.
	cfg := DefaultConfig()
	cfg.ValidateEvery = false
	e, err := New(validateTopology(t, 100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("first-tuple mode flagged the drift: %v", res.Errors)
	}

	// Debug mode: every tuple is checked, the second one fails.
	cfg.ValidateEvery = true
	e, err = New(validateTopology(t, 100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err = e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("ValidateEvery missed a post-first-tuple schema drift")
	}
}
