package engine

// engine_bench_test.go measures the dispatch hot path in isolation: the
// partition controller, per-consumer jumbo accumulation and the SPSC
// enqueue, without spout/operator work on top. Run with:
//
//	go test -bench EngineDispatch -run xxx ./internal/engine/

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"briskstream/internal/graph"
)

// benchDispatch pushes b.N tuples through one producer task's dispatch
// into `consumers` sink replicas drained by raw inbox readers.
func benchDispatch(b *testing.B, consumers int, part graph.Partitioning) {
	b.Helper()
	g := graph.New("dispatch")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "sink", Stream: "default", Partitioning: part, KeyField: 0})
	if err := g.Validate(); err != nil {
		b.Fatal(err)
	}
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return SpoutFunc(func(c Collector) error { return io.EOF })
		}},
		Operators:   map[string]func() Operator{"sink": func() Operator { return sinkOp() }},
		Replication: map[string]int{"sink": consumers},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	producer := e.byOp["spout"][0]
	var wg sync.WaitGroup
	for _, ct := range e.byOp["sink"] {
		wg.Add(1)
		go func(ct *task) {
			defer wg.Done()
			for {
				j, err := ct.in.Get()
				if err != nil {
					return
				}
				for _, in := range j.Tuples {
					in.Release()
				}
				e.recycleJumbo(ct, j)
			}
		}(ct)
	}
	// The measured loop is the pooled emit→dispatch path itself (borrow,
	// fill typed slots, route, batch, enqueue), which must not allocate
	// in steady state.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := producer.pool.Get()
		out.AppendInt(1042)
		if err := e.dispatch(producer, out); err != nil {
			b.Fatal(err)
		}
	}
	e.flushAll(producer)
	e.finishProducing(producer)
	wg.Wait()
}

func BenchmarkEngineDispatch(b *testing.B) {
	for _, consumers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shuffle-c%d", consumers), func(b *testing.B) {
			benchDispatch(b, consumers, graph.Shuffle)
		})
	}
	b.Run("fields-c4", func(b *testing.B) {
		benchDispatch(b, 4, graph.Fields)
	})
}
