package engine

import (
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// pipelineGraph builds spout -> double -> sink where double emits every
// input twice.
func pipelineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("pipe")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}}))
	must(g.AddNode(&graph.Node{Name: "double", Selectivity: map[string]float64{"default": 2}}))
	must(g.AddNode(&graph.Node{Name: "sink", IsSink: true}))
	must(g.AddEdge(graph.Edge{From: "spout", To: "double", Stream: "default"}))
	must(g.AddEdge(graph.Edge{From: "double", To: "sink", Stream: "default"}))
	must(g.Validate())
	return g
}

var ioEOF = io.EOF

// forwardTuple re-emits t's typed payload on the default stream (the
// test-operator forwarding shape).
func forwardTuple(c Collector, t *tuple.Tuple) {
	out := c.Borrow()
	out.CopyValuesFrom(t)
	c.Send(out)
}

func doubler() Operator {
	return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
		forwardTuple(c, t)
		forwardTuple(c, t)
		return nil
	})
}

func passthrough() Operator {
	return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
		forwardTuple(c, t)
		return nil
	})
}

func sinkOp() Operator {
	return OperatorFunc(func(c Collector, t *tuple.Tuple) error { return nil })
}

func TestPipelineCountsExact(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != 2000 {
		t.Fatalf("sink tuples = %d, want 2000 (selectivity 2)", res.SinkTuples)
	}
	if res.Processed["spout"] != 1000 {
		t.Errorf("spout processed = %d", res.Processed["spout"])
	}
	if res.Processed["double"] != 1000 {
		t.Errorf("double processed = %d", res.Processed["double"])
	}
}

// boundedSpoutEOF emits n tuples then returns io.EOF.
func boundedSpoutEOF(n int) func() Spout {
	return func() Spout {
		i := 0
		return SpoutFunc(func(c Collector) error {
			if i >= n {
				return ioEOF
			}
			c.Emit(int64(i))
			i++
			return nil
		})
	}
}

func TestReplicatedOperatorsConserveTuples(t *testing.T) {
	topo := Topology{
		App:         pipelineGraph(t),
		Spouts:      map[string]func() Spout{"spout": boundedSpoutEOF(3000)},
		Operators:   map[string]func() Operator{"double": doubler, "sink": sinkOp},
		Replication: map[string]int{"double": 4, "sink": 2},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 6000 {
		t.Fatalf("sink tuples = %d, want 6000", res.SinkTuples)
	}
}

func TestFieldsPartitioningRoutesByKey(t *testing.T) {
	g := graph.New("fields")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "count", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "count", Stream: "default", Partitioning: graph.Fields, KeyField: 0})
	g.AddEdge(graph.Edge{From: "count", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Each replica tracks the set of keys it saw; sets must be disjoint.
	var mu [8]atomic.Pointer[map[string]bool]
	var replicaSeq atomic.Int32
	counter := func() Operator {
		idx := int(replicaSeq.Add(1)) - 1
		seen := map[string]bool{}
		p := &seen
		mu[idx].Store(p)
		return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
			// Str views die with the pooled tuple; own the key bytes.
			seen[strings.Clone(t.Str(0))] = true
			forwardTuple(c, t)
			return nil
		})
	}

	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	mkSpout := func() Spout {
		i := 0
		return SpoutFunc(func(c Collector) error {
			if i >= 600 {
				return ioEOF
			}
			c.Emit(words[i%len(words)])
			i++
			return nil
		})
	}
	topo := Topology{
		App:         g,
		Spouts:      map[string]func() Spout{"spout": mkSpout},
		Operators:   map[string]func() Operator{"count": counter, "sink": sinkOp},
		Replication: map[string]int{"count": 3},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 600 {
		t.Fatalf("sink tuples = %d", res.SinkTuples)
	}
	// Key sets of distinct replicas must be disjoint.
	union := map[string]int{}
	for i := 0; i < 3; i++ {
		if p := mu[i].Load(); p != nil {
			for w := range *p {
				union[w]++
			}
		}
	}
	for w, n := range union {
		if n > 1 {
			t.Errorf("word %q seen by %d replicas; fields partitioning must pin keys", w, n)
		}
	}
	if len(union) != len(words) {
		t.Errorf("union covers %d of %d words", len(union), len(words))
	}
}

func TestBroadcastDeliversToAllReplicas(t *testing.T) {
	g := graph.New("bcast")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "mirror", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "mirror", Stream: "default", Partitioning: graph.Broadcast})
	g.AddEdge(graph.Edge{From: "mirror", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := Topology{
		App:         g,
		Spouts:      map[string]func() Spout{"spout": boundedSpoutEOF(500)},
		Operators:   map[string]func() Operator{"mirror": passthrough, "sink": sinkOp},
		Replication: map[string]int{"mirror": 3},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast to 3 replicas: the sink sees 3x the spout count.
	if res.SinkTuples != 1500 {
		t.Fatalf("sink tuples = %d, want 1500", res.SinkTuples)
	}
}

func TestDurationBoundedRunStops(t *testing.T) {
	infinite := func() Spout {
		return SpoutFunc(func(c Collector) error {
			c.Emit(int64(1))
			return nil
		})
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": infinite},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() {
		res, _ := e.Run(100 * time.Millisecond)
		done <- res
	}()
	select {
	case res := <-done:
		if res.SinkTuples == 0 {
			t.Error("no tuples processed in bounded run")
		}
		if res.Throughput <= 0 {
			t.Error("throughput not computed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bounded run did not stop")
	}
}

func TestEndToEndLatencyMeasured(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(2000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.LatencySampleEvery = 10
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	if res.Latency.Quantile(0.5) <= 0 {
		t.Error("median latency must be positive")
	}
}

func TestOperatorErrorStopsPipeline(t *testing.T) {
	failing := func() Operator {
		n := 0
		return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
			n++
			if n > 10 {
				return errors.New("synthetic failure")
			}
			forwardTuple(c, t)
			return nil
		})
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(100000)},
		Operators: map[string]func() Operator{"double": failing, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() { res, _ := e.Run(0); done <- res }()
	select {
	case res := <-done:
		if len(res.Errors) == 0 {
			t.Fatal("operator error not reported")
		}
		if !strings.Contains(res.Errors[0].Error(), "synthetic failure") {
			t.Errorf("unexpected error: %v", res.Errors[0])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not shut down after operator error")
	}
}

func TestOperatorPanicIsIsolated(t *testing.T) {
	panicking := func() Operator {
		n := 0
		return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
			n++
			if n > 5 {
				panic("boom")
			}
			forwardTuple(c, t)
			return nil
		})
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(100000)},
		Operators: map[string]func() Operator{"double": panicking, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Result, 1)
	go func() { res, _ := e.Run(0); done <- res }()
	select {
	case res := <-done:
		found := false
		for _, err := range res.Errors {
			if strings.Contains(err.Error(), "panicked") {
				found = true
			}
		}
		if !found {
			t.Fatalf("panic not captured: %v", res.Errors)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not survive operator panic")
	}
}

func TestStormLikeModeProducesSameResults(t *testing.T) {
	// The baseline execution path (serialize + copy + no jumbo) must be
	// functionally identical, just slower.
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(500)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, StormLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != 1000 {
		t.Fatalf("sink tuples = %d, want 1000", res.SinkTuples)
	}
}

func TestNewRejectsMissingBuilders(t *testing.T) {
	topo := Topology{
		App:    pipelineGraph(t),
		Spouts: map[string]func() Spout{},
		Operators: map[string]func() Operator{
			"double": doubler, "sink": sinkOp,
		},
	}
	if _, err := New(topo, DefaultConfig()); err == nil {
		t.Error("missing spout builder accepted")
	}
	topo2 := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(1)},
		Operators: map[string]func() Operator{"sink": sinkOp},
	}
	if _, err := New(topo2, DefaultConfig()); err == nil {
		t.Error("missing operator builder accepted")
	}
}

func TestMultiStreamRouting(t *testing.T) {
	// An operator with two output streams routed to different sinks.
	g := graph.New("streams")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "split", Selectivity: map[string]float64{"odd": 0.5, "even": 0.5}})
	g.AddNode(&graph.Node{Name: "oddsink", IsSink: true})
	g.AddNode(&graph.Node{Name: "evensink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "split", Stream: "default"})
	g.AddEdge(graph.Edge{From: "split", To: "oddsink", Stream: "odd"})
	g.AddEdge(graph.Edge{From: "split", To: "evensink", Stream: "even"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	splitter := func() Operator {
		return OperatorFunc(func(c Collector, t *tuple.Tuple) error {
			out := c.Borrow()
			out.CopyValuesFrom(t)
			if t.Int(0)%2 == 0 {
				out.Stream = tuple.Intern("even")
			} else {
				out.Stream = tuple.Intern("odd")
			}
			c.Send(out)
			return nil
		})
	}
	topo := Topology{
		App:       g,
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(1000)},
		Operators: map[string]func() Operator{"split": splitter, "oddsink": sinkOp, "evensink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkTuples != 1000 {
		t.Fatalf("sink tuples = %d, want 1000", res.SinkTuples)
	}
}

func TestFieldHashStability(t *testing.T) {
	// Fields routing hashes slots through tuple.Tuple.Hash; the
	// assignments must be stable per value and distinct across values.
	if tuple.New("word").Hash(0) != tuple.New("word").Hash(0) {
		t.Error("string hash unstable")
	}
	if tuple.New(int64(7)).Hash(0) != tuple.New(7).Hash(0) {
		t.Error("int and int64 hash differently")
	}
	if tuple.New(true).Hash(0) == tuple.New(false).Hash(0) {
		t.Error("bool hash collision")
	}
	_ = tuple.New(3.14).Hash(0)
}
