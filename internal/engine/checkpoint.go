package engine

// Aligned-barrier checkpointing (Chandy–Lamport adapted to the
// shared-memory engine). TriggerCheckpoint publishes a checkpoint
// request; every source task picks it up between Next calls, records
// its replay offset, acks to the coordinator and broadcasts a barrier
// punctuation on all its edges. Every downstream task aligns: once one
// producer edge has delivered the barrier, batches arriving on that
// edge are parked (the data belongs after the snapshot) while the other
// edges keep draining; when the last edge's barrier arrives the task
// snapshots its operator on its own goroutine, acks, re-broadcasts the
// barrier, and replays the parked batches. The coordinator persists the
// checkpoint once every task acked — so a completed checkpoint is a
// consistent global cut: each task's state reflects exactly the tuples
// its sources emitted before their barriers, no more, no less.
//
// Recovery is Restore + Run: the next Run rebuilds every task's state
// from the latest completed checkpoint after its usual re-run reset,
// seeks each ReplayableSpout back to its recorded offset, and the
// deterministic sources regenerate the exact post-checkpoint stream.

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/tuple"
)

// ReplayableSpout is a source that can rewind: Offset reports the
// position of the stream as a count of emitted tuples, and SeekTo
// repositions the source so that the next emitted tuple is the one that
// followed position offset. A replayable source must be deterministic —
// after SeekTo(n) it must emit exactly the tuples it would have emitted
// after its first n — or recovery diverges from the failure-free run.
// Sources with state beyond their offset (e.g. an exhausted upstream
// cursor) additionally implement checkpoint.Snapshotter.
type ReplayableSpout interface {
	Spout
	Offset() int64
	SeekTo(offset int64) error
}

// ErrNoCheckpoint is returned by Restore when no checkpoint has
// completed yet.
var ErrNoCheckpoint = errors.New("engine: no completed checkpoint to restore from")

// barrierDone, carried in a barrier punctuation's Event field, marks a
// producer that finished (spout EOF) and will never emit another
// barrier. Alignment excludes done producers — the barrier analogue of
// WatermarkIdle — so checkpoints triggered while part of the topology
// has already ended cannot park the live part forever. Real checkpoint
// ids are positive, so the sentinel cannot collide.
const barrierDone = int64(-1)

// TriggerCheckpoint starts one aligned checkpoint and returns its id
// (0 when checkpointing is not configured). It is safe to call from any
// goroutine while the engine runs; Run triggers it on a ticker when
// Config.CheckpointInterval is set. The checkpoint completes — and
// becomes visible to Restore — only once every task has snapshotted.
func (e *Engine) TriggerCheckpoint() uint64 {
	if e.coord == nil {
		return 0
	}
	id := e.ckptSeq.Add(1)
	labels := make([]string, len(e.tasks))
	for i, t := range e.tasks {
		labels[i] = t.label
	}
	// Register with the coordinator before publishing the request:
	// a source must never ack a checkpoint the coordinator has not begun.
	// (Begin can persist immediately — every task already retired — and
	// a persist failure surfaces like any other run error.)
	if err := e.coord.Begin(id, labels); err != nil {
		e.recordErr(err)
		return 0
	}
	for {
		cur := e.ckptReq.Load()
		if id <= cur || e.ckptReq.CompareAndSwap(cur, id) {
			break
		}
	}
	e.event("checkpoint_begin", "", map[string]string{"id": strconv.FormatUint(id, 10)})
	return id
}

// Kill aborts the current run the way a crash would: processing stops
// and the queues close with no final watermark and no flush of open
// windows. It exists for failure injection (briskbench -kill-after and
// the recovery tests). The engine stays usable: Restore followed by Run
// resumes from the latest completed checkpoint.
func (e *Engine) Kill() {
	e.stop.Store(true)
	e.closeAllQueues()
	e.event("kill", "", nil)
}

// Restore arranges for the next Run to rebuild every task from the
// latest completed checkpoint: operator state is re-loaded, sources are
// sought back to their recorded offsets, and the replayed stream
// regenerates everything after the cut. It returns the checkpoint id
// that will be restored. Restore must not be called while a run is in
// progress.
func (e *Engine) Restore() (uint64, error) {
	if e.coord == nil {
		return 0, errors.New("engine: checkpointing not configured (Config.Checkpoint is nil)")
	}
	cp, err := e.coord.Latest()
	if err != nil {
		return 0, err
	}
	if cp == nil {
		return 0, ErrNoCheckpoint
	}
	e.restoreCp = cp
	e.event("restore", "", map[string]string{"id": strconv.FormatUint(cp.ID, 10)})
	return cp.ID, nil
}

// sourceBarrier takes a source task's local snapshot for checkpoint id
// (its replay offset plus any Snapshotter state), acks, and broadcasts
// the barrier behind everything the source has emitted so far.
func (e *Engine) sourceBarrier(t *task, c *collector, id uint64) error {
	t.lastCkpt = id
	enc := checkpoint.NewEncoder()
	if rs, ok := t.spout.(ReplayableSpout); ok {
		enc.Bool(true)
		enc.Int64(rs.Offset())
	} else {
		enc.Bool(false)
	}
	if s, ok := t.spout.(checkpoint.Snapshotter); ok {
		enc.Bool(true)
		if err := s.Snapshot(enc); err != nil {
			return fmt.Errorf("engine: spout %s snapshot: %w", t.label, err)
		}
	} else {
		enc.Bool(false)
	}
	if err := e.coord.Ack(id, t.label, enc.Bytes()); err != nil {
		return err
	}
	return e.broadcastPunct(t, barrierStreamID, int64(id), c.latencyTs())
}

// retireTask hands the coordinator a naturally finished task's final
// snapshot (same framing as the barrier-time snapshots), so checkpoints
// keep completing — and stay restorable — while part of the topology
// has already ended. A restored retired source seeks to its final
// offset and immediately EOFs again; a restored retired operator holds
// its final state.
func (e *Engine) retireTask(t *task) error {
	enc := checkpoint.NewEncoder()
	if t.spout != nil {
		if rs, ok := t.spout.(ReplayableSpout); ok {
			enc.Bool(true)
			enc.Int64(rs.Offset())
		} else {
			enc.Bool(false)
		}
		if s, ok := t.spout.(checkpoint.Snapshotter); ok {
			enc.Bool(true)
			if err := s.Snapshot(enc); err != nil {
				return fmt.Errorf("engine: spout %s final snapshot: %w", t.label, err)
			}
		} else {
			enc.Bool(false)
		}
	} else {
		enc.Int64(t.tm.wm)
		if s, ok := t.operator.(checkpoint.Snapshotter); ok {
			enc.Bool(true)
			if err := s.Snapshot(enc); err != nil {
				return fmt.Errorf("engine: task %s final snapshot: %w", t.label, err)
			}
		} else {
			enc.Bool(false)
		}
	}
	return e.coord.Retire(t.label, enc.Bytes())
}

// finishTask runs when a task completes naturally (spout EOF, or a
// consumer whose inbox closed outside a shutdown): under checkpointing
// the task retires with its final state. Crash-shaped exits (stop flag,
// task failure) never retire — a killed run's state is not final.
func (e *Engine) finishTask(t *task) {
	if e.coord == nil || e.stop.Load() {
		return
	}
	if err := e.retireTask(t); err != nil {
		e.failTask(err)
	}
}

// handleBarrier processes one received barrier: start or advance the
// task's alignment, and complete it when the last producer edge
// delivers.
func (e *Engine) handleBarrier(t *task, c *collector, id uint64, producer int) error {
	if t.alignID != 0 && id > t.alignID {
		// A newer barrier overtook the checkpoint being aligned (a source
		// skipped a request id): that checkpoint can never complete here.
		// Abandon it, replaying the input its alignment parked.
		if err := e.abandonAlignment(t, c); err != nil {
			return err
		}
	}
	if t.alignID == 0 {
		if id <= t.lastCkpt {
			return nil // stale barrier for a checkpoint already handled
		}
		t.alignID = id
		t.alignLeft = 0
		clear(t.alignSeen)
		// Done producers count as pre-aligned: they will never send this
		// (or any) barrier.
		for _, p := range t.prods {
			if t.doneIn[p] {
				t.alignSeen[p] = true
			} else {
				t.alignLeft++
			}
		}
		// Arm the skew bound: if the slowest edges have not delivered
		// their barrier by the deadline, the attempt is abandoned and the
		// parked input replayed (alignTimedOut). A completed alignment
		// leaves the timer stale via alignSeq.
		t.alignSeq++
		if e.cfg.AlignTimeout > 0 && t.alignLeft > 1 {
			t.tm.registerAlignTimeout(t.alignSeq, time.Now().Add(e.cfg.AlignTimeout))
		}
	}
	if id != t.alignID {
		return nil // older than the alignment in progress: obsolete
	}
	if !t.alignSeen[producer] {
		t.alignSeen[producer] = true
		t.alignLeft--
	}
	if t.alignLeft > 0 {
		return nil
	}
	return e.completeAlignment(t, c)
}

// handleDoneBarrier marks a finished producer: it is excluded from the
// current and all future alignments, and once every producer of this
// task is done, the task itself can never forward a barrier again — the
// done marker propagates, exactly like all-idle watermark propagation.
func (e *Engine) handleDoneBarrier(t *task, c *collector, producer int) error {
	if t.doneIn[producer] {
		return nil
	}
	t.doneIn[producer] = true
	if t.alignID != 0 && !t.alignSeen[producer] {
		t.alignSeen[producer] = true
		t.alignLeft--
		if t.alignLeft == 0 {
			if err := e.completeAlignment(t, c); err != nil {
				return err
			}
		}
	}
	for _, p := range t.prods {
		if !t.doneIn[p] {
			return nil
		}
	}
	return e.broadcastPunct(t, barrierStreamID, barrierDone, time.Time{})
}

// completeAlignment runs once every producer edge has delivered the
// barrier: snapshot the operator at the consistent cut, ack, forward
// the barrier, then replay the batches alignment parked.
func (e *Engine) completeAlignment(t *task, c *collector) error {
	id := t.alignID
	t.alignID = 0
	t.alignLeft = 0
	clear(t.alignSeen)
	t.lastCkpt = id
	enc := checkpoint.NewEncoder()
	// The task watermark is part of the cut: restoring it keeps
	// late-tuple semantics identical across the replay.
	enc.Int64(t.tm.wm)
	if s, ok := t.operator.(checkpoint.Snapshotter); ok {
		enc.Bool(true)
		if err := s.Snapshot(enc); err != nil {
			return fmt.Errorf("engine: task %s snapshot: %w", t.label, err)
		}
	} else {
		enc.Bool(false)
	}
	if e.coord != nil {
		if err := e.coord.Ack(id, t.label, enc.Bytes()); err != nil {
			return err
		}
	}
	if err := e.broadcastPunct(t, barrierStreamID, int64(id), c.latencyTs()); err != nil {
		return err
	}
	buf := t.alignBuf
	t.alignBuf = nil
	return e.replayParked(t, c, buf)
}

// alignTimedOut fires when an alignment attempt outlives
// Config.AlignTimeout: the checkpoint attempt is dropped at this task
// (the laggard barriers become stale on arrival) and the parked jumbos
// replay, so pathological producer skew bounds parked memory by the
// timeout instead of by the skew.
func (e *Engine) alignTimedOut(t *task, c *collector, seq uint32) error {
	if t.alignID == 0 || seq != t.alignSeq {
		return nil // stale: that alignment completed or was superseded
	}
	e.alignTimeouts.Add(1)
	e.event("checkpoint_timeout", t.label, map[string]string{"id": strconv.FormatUint(t.alignID, 10)})
	if t.alignID > t.lastCkpt {
		t.lastCkpt = t.alignID
	}
	return e.abandonAlignment(t, c)
}

// abandonAlignment gives up on the checkpoint being aligned (it will
// never complete on this task) and replays the parked input so no tuple
// is lost.
func (e *Engine) abandonAlignment(t *task, c *collector) error {
	t.alignID = 0
	t.alignLeft = 0
	clear(t.alignSeen)
	buf := t.alignBuf
	t.alignBuf = nil
	return e.replayParked(t, c, buf)
}

// replayParked consumes batches parked during an alignment, with the
// same edge gating as the live loop: a batch from an edge that is (now)
// aligned for a newer checkpoint parks again. Nested barriers in the
// parked input are handled like live ones, so back-to-back checkpoints
// compose.
func (e *Engine) replayParked(t *task, c *collector, buf []*tuple.Jumbo) error {
	for k, j := range buf {
		if t.alignID != 0 && t.alignSeen[j.Producer] {
			t.alignBuf = append(t.alignBuf, j)
			continue
		}
		if err := e.consumeJumbo(t, c, j); err != nil {
			for _, jj := range buf[k+1:] {
				for _, in := range jj.Tuples {
					in.Release()
				}
			}
			return err
		}
	}
	return nil
}

// drainAlignment runs when a task's inbox closes (EOF or shutdown)
// while an alignment might be in progress: the missing barriers will
// never arrive, so the in-flight checkpoint is abandoned — but the
// parked batches are still processed, because shutdown must not drop
// data (a checkpoint may even complete here, if all its barriers were
// already parked). Errors during the drain fail the task like any
// processing error.
func (e *Engine) drainAlignment(t *task, c *collector) {
	for t.alignID != 0 || len(t.alignBuf) > 0 {
		if err := e.abandonAlignment(t, c); err != nil {
			e.failTask(err)
			return
		}
	}
}

// applyRestore rebuilds every task from a completed checkpoint. It runs
// inside Run, after the re-run reset and before any task goroutine
// starts, so restored timers and watermarks survive into the run.
func (e *Engine) applyRestore(cp *checkpoint.Checkpoint) error {
	for _, t := range e.tasks {
		data, ok := cp.Tasks[t.label]
		if !ok {
			return fmt.Errorf("engine: checkpoint %d has no snapshot for task %s (topology changed?)", cp.ID, t.label)
		}
		dec := checkpoint.NewDecoder(data)
		if t.spout != nil {
			if dec.Bool() {
				off := dec.Int64()
				rs, ok := t.spout.(ReplayableSpout)
				if !ok {
					return fmt.Errorf("engine: checkpoint %d: spout %s recorded an offset but is not replayable", cp.ID, t.label)
				}
				if err := rs.SeekTo(off); err != nil {
					return fmt.Errorf("engine: spout %s seek to %d: %w", t.label, off, err)
				}
			}
			if dec.Bool() {
				s, ok := t.spout.(checkpoint.Snapshotter)
				if !ok {
					return fmt.Errorf("engine: checkpoint %d: spout %s recorded state but is not a Snapshotter", cp.ID, t.label)
				}
				if err := s.Restore(dec); err != nil {
					return fmt.Errorf("engine: spout %s restore: %w", t.label, err)
				}
			}
		} else {
			t.tm.wm = dec.Int64()
			atomic.StoreInt64(&t.wmLive, t.tm.wm)
			if dec.Bool() {
				s, ok := t.operator.(checkpoint.Snapshotter)
				if !ok {
					return fmt.Errorf("engine: checkpoint %d: task %s recorded state but is not a Snapshotter", cp.ID, t.label)
				}
				if err := s.Restore(dec); err != nil {
					return fmt.Errorf("engine: task %s restore: %w", t.label, err)
				}
			}
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("engine: task %s: %w", t.label, err)
		}
	}
	return nil
}

// latencyTs returns the punctuation latency timestamp (punctuations are
// rare, so each carries one when sampling is on — barriers inherit the
// same policy as watermarks, keeping checkpoint-induced latency
// observable at the sinks).
func (c *collector) latencyTs() time.Time {
	if c.e.cfg.LatencySampleEvery > 0 {
		return time.Now()
	}
	return time.Time{}
}
