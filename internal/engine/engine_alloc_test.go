package engine

// Allocation guards for the emit→dispatch hot path: the BriskStream
// mode (pass-by-reference, jumbo tuples) must not allocate per emitted
// tuple in steady state — tuples carry typed slots (string payloads in
// pooled arenas, no boxing), jumbo headers are pooled, routing compares
// interned stream ids, and fields hashing is inline over slots. The
// bound is exactly zero: the typed slot representation removed the
// historical ≤1 boxing exemption. The Storm-like emulation mode is
// exempt: paying per-tuple copy and serialization costs is exactly
// what it models.

import (
	"io"
	"strings"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/obs"
)

// allocHarness builds a spout->sink edge with `consumers` sink replicas
// and returns the producer's collector plus a drain func that empties
// the consumer inboxes inline, releasing tuples and recycling jumbos
// the way runTask does. Draining on the measuring goroutine keeps the
// recycle loop alive under testing.AllocsPerRun, which pins
// GOMAXPROCS(1) and would starve background drain goroutines.
func allocHarness(t *testing.T, cfg Config, consumers int, part graph.Partitioning) (*collector, func()) {
	t.Helper()
	g := graph.New("alloc")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "sink", Stream: "default", Partitioning: part, KeyField: 0})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return SpoutFunc(func(c Collector) error { return io.EOF })
		}},
		Operators:   map[string]func() Operator{"sink": func() Operator { return sinkOp() }},
		Replication: map[string]int{"sink": consumers},
	}
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	producer := e.byOp["spout"][0]
	drain := func() {
		for _, ct := range e.byOp["sink"] {
			for {
				j, ok, _ := ct.in.TryGet()
				if !ok {
					break
				}
				for _, in := range j.Tuples {
					in.Release()
				}
				e.recycleJumbo(ct, j)
			}
		}
	}
	return &collector{e: e, t: producer}, drain
}

func TestEmitDispatchAllocFreeBriskMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LatencySampleEvery = 0 // time.Now stamping is not the measured path
	for _, part := range []graph.Partitioning{graph.Shuffle, graph.Fields} {
		c, drain := allocHarness(t, cfg, 4, part)
		emit := func() {
			out := c.Borrow()
			out.AppendStr("the quick brown fox")
			out.AppendInt(100042)
			c.Send(out)
			drain()
		}
		for i := 0; i < 1000; i++ {
			emit() // warm the pools
		}
		avg := testing.AllocsPerRun(5000, emit)
		if avg > 0 {
			t.Errorf("%v: emit->dispatch allocates %.2f/op in BriskStream mode, want 0", part, avg)
		}
	}
}

func TestEmitDispatchAllocsStormModeExempt(t *testing.T) {
	// Documented contrast, not a ceiling: the Storm-like path clones and
	// (de)serializes per tuple, so it must allocate. If this ever drops
	// to zero the emulation stopped emulating.
	c, drain := allocHarness(t, StormLikeConfig(), 4, graph.Shuffle)
	emit := func() {
		out := c.Borrow()
		out.AppendStr("the quick brown fox")
		out.AppendInt(100042)
		c.Send(out)
		drain()
	}
	for i := 0; i < 100; i++ {
		emit()
	}
	avg := testing.AllocsPerRun(2000, emit)
	if avg < 1 {
		t.Errorf("storm-like emit allocates %.2f/op; the defensive-copy emulation should allocate", avg)
	}
}

func TestEmitDispatchAllocFreeWithObs(t *testing.T) {
	// Observability on must not change the zero-alloc bound: RegisterObs
	// enables pool accounting and registers pull-based series over the
	// engine's atomics, so the emit->dispatch path pays only predictable
	// branches. A scrape between warm-up and measurement proves reading
	// the series does not make the hot path allocate either.
	cfg := DefaultConfig()
	cfg.LatencySampleEvery = 0 // time.Now stamping is not the measured path
	c, drain := allocHarness(t, cfg, 4, graph.Shuffle)
	reg := obs.NewRegistry(0)
	c.e.RegisterObs(reg.Group("engine"), obs.NewJournal(0))
	emit := func() {
		out := c.Borrow()
		out.AppendStr("the quick brown fox")
		out.AppendInt(100042)
		c.Send(out)
		drain()
	}
	for i := 0; i < 1000; i++ {
		emit()
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5000, emit)
	if avg > 0 {
		t.Errorf("emit->dispatch allocates %.2f/op with observability registered, want 0", avg)
	}
}

func TestEmitDispatchAllocFreeWithTracing(t *testing.T) {
	// Tracing registered must keep the bound at exactly zero in both
	// regimes: the every-k-th sampled tuple writes its source span into a
	// preallocated ring slot (atomics over fixed words, no boxing), and
	// the unsampled tuples pay only the stride counter branch. k=1 is
	// the worst case — every emit stamps a trace context and appends a
	// span.
	for _, every := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.LatencySampleEvery = 0 // time.Now stamping is not the measured path
		cfg.TraceSampleEvery = every
		c, drain := allocHarness(t, cfg, 4, graph.Shuffle)
		tracer := obs.NewTracer()
		c.e.RegisterTrace(tracer)
		emit := func() {
			out := c.Borrow()
			out.AppendStr("the quick brown fox")
			out.AppendInt(100042)
			c.Send(out)
			drain()
		}
		for i := 0; i < 1000; i++ {
			emit()
		}
		avg := testing.AllocsPerRun(5000, emit)
		if avg > 0 {
			t.Errorf("every=%d: emit->dispatch allocates %.2f/op with tracing registered, want 0", every, avg)
		}
		if tracer.Len() == 0 {
			t.Errorf("every=%d: tracer captured no spans", every)
		}
	}
}
