package engine

// Tests for pinned executors: every task thread gets bound to its
// socket's CPU set for the duration of the run, and Run stays reusable
// afterwards — the OS threads are unlocked and their affinity masks
// restored, so a rerun pins cleanly again and unrelated goroutines are
// never trapped on a narrowed mask.

import (
	"runtime"
	"testing"

	"briskstream/internal/numa"
)

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPinnedRunAndRerunHygiene runs a pinned topology three times on
// one Engine. Every run must pin every task afresh (PinnedTasks is
// per-run, not cumulative), and the test goroutine's own thread
// affinity must come out of the runs untouched.
func TestPinnedRunAndRerunHygiene(t *testing.T) {
	if !numa.PinSupported() {
		t.Skip("thread affinity not supported on this platform")
	}
	// Pin the test goroutine to its thread so the affinity reads below
	// observe one fixed thread across the engine runs.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	before, err := numa.Affinity()
	if err != nil {
		t.Fatal(err)
	}

	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.Pin = true
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 3; run++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatalf("run %d errors: %v", run, res.Errors)
		}
		if res.SinkTuples != 2000 {
			t.Fatalf("run %d: sink tuples = %d, want 2000", run, res.SinkTuples)
		}
		if res.PinnedTasks != 3 {
			t.Fatalf("run %d: pinned %d tasks, want 3 (spout, double, sink): pinning must repeat on rerun, not accumulate or decay", run, res.PinnedTasks)
		}
	}

	after, err := numa.Affinity()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(sortedCopy(before), sortedCopy(after)) {
		t.Fatalf("test thread affinity changed across pinned runs: %v -> %v (task unpin leaked onto a reused thread)", before, after)
	}
}

// TestUnpinnedRunReportsZeroPinnedTasks: with Pin off (and no BRISK_PIN
// in the test environment), no task may touch thread affinity.
func TestUnpinnedRunReportsZeroPinnedTasks(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(500)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.Pin = false
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PinnedTasks != 0 {
		t.Fatalf("pinned %d tasks with Pin disabled, want 0", res.PinnedTasks)
	}
}

// TestPinWithPlacementUsesPlacedSockets: with an explicit Placement the
// pin CPU sets follow the plan's socket assignment (wrapped onto the
// host's real sockets) instead of the round-robin default.
func TestPinWithPlacementUsesPlacedSockets(t *testing.T) {
	if !numa.PinSupported() {
		t.Skip("thread affinity not supported on this platform")
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(500)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.Pin = true
	cfg.Placement = map[string]numa.SocketID{
		"spout#0":  0,
		"double#0": 1, // wraps onto socket 0 on a single-socket host
		"sink#0":   0,
	}
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.PinnedTasks != 3 {
		t.Fatalf("pinned %d tasks, want 3", res.PinnedTasks)
	}
}
