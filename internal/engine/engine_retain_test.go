package engine

// Pool-recycling safety tests: operators that keep tuples beyond
// Process (the Retain escape hatch for windows/joins) must be able to
// hand them to other goroutines without the producer's pool recycling
// them underneath. Run under -race (make race / CI) these exercise the
// reference-counting protocol end to end.

import (
	"sync"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

func TestRetainAcrossGoroutines(t *testing.T) {
	const n = 20000
	g := graph.New("retain")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "hold", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "hold", Stream: "default", Partitioning: graph.Shuffle})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// Each sink replica retains every input and hands it to a shared
	// side goroutine that reads the payload and drops the reference.
	held := make(chan *tuple.Tuple, 256)
	var side sync.WaitGroup
	side.Add(1)
	var sum, count int64
	go func() {
		defer side.Done()
		for tp := range held {
			sum += tp.Int(0)
			count++
			tp.Release()
		}
	}()

	topo := Topology{
		App:    g,
		Spouts: map[string]func() Spout{"spout": boundedSpoutEOF(n)},
		Operators: map[string]func() Operator{
			"hold": func() Operator {
				return OperatorFunc(func(c Collector, tp *tuple.Tuple) error {
					tp.Retain()
					held <- tp
					return nil
				})
			},
		},
		Replication: map[string]int{"hold": 4},
	}
	cfg := DefaultConfig()
	cfg.QueueCapacity = 8 // small buffers: maximum recycling pressure
	cfg.BatchSize = 16
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	close(held)
	side.Wait()
	if count != n {
		t.Fatalf("side goroutine saw %d tuples, want %d", count, n)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("payload sum = %d, want %d (retained tuple recycled early?)", sum, want)
	}
}

func TestSharedFanoutTupleSurvivesAllConsumers(t *testing.T) {
	// One emitted tuple reaches several consumer tasks by reference
	// (multiple routes on the same stream, as in LR's position report).
	// Every consumer must read intact values; -race catches a recycle
	// racing a slower consumer.
	const n = 5000
	g := graph.New("fanout")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "left", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "right", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "left", Stream: "default"})
	g.AddEdge(graph.Edge{From: "spout", To: "right", Stream: "default"})
	g.AddEdge(graph.Edge{From: "left", To: "sink", Stream: "default"})
	g.AddEdge(graph.Edge{From: "right", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	check := func() Operator {
		return OperatorFunc(func(c Collector, tp *tuple.Tuple) error {
			if v := tp.Int(0); v < 0 || v >= n {
				t.Errorf("clobbered payload %d", v)
			}
			forwardTuple(c, tp)
			return nil
		})
	}
	topo := Topology{
		App:       g,
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(n)},
		Operators: map[string]func() Operator{"left": check, "right": check, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.SinkTuples != 2*n {
		t.Fatalf("sink tuples = %d, want %d", res.SinkTuples, 2*n)
	}
}
