package engine

import (
	"testing"

	"briskstream/internal/numa"
)

// TestRMAEmulationSlowsRemoteConsumers verifies the engine's emulated
// NUMA penalty: the same pipeline placed across sockets must run
// measurably slower than collocated, because the consumer busy-waits
// FetchCost per tuple.
func TestRMAEmulationSlowsRemoteConsumers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	run := func(placement map[string]numa.SocketID) float64 {
		topo := Topology{
			App:       pipelineGraph(t),
			Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(20000)},
			Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
		}
		cfg := DefaultConfig()
		cfg.Machine = numa.ServerA()
		cfg.RMAScale = 1
		cfg.Placement = placement
		e, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.SinkTuples != 40000 {
			t.Fatalf("sink tuples = %d", res.SinkTuples)
		}
		return res.Duration.Seconds()
	}

	local := run(map[string]numa.SocketID{"spout#0": 0, "double#0": 0, "sink#0": 0})
	remote := run(map[string]numa.SocketID{"spout#0": 0, "double#0": 4, "sink#0": 0})
	// Cross-tray fetches at 548ns x 2 cache lines per tuple x 40k hops
	// should add measurable wall time.
	if remote <= local {
		t.Errorf("remote run (%vs) should be slower than local (%vs)", remote, local)
	}
}

// TestJumboBatchSizeAmortizesQueueOps: larger batches mean fewer queue
// insertions for the same tuple count.
func TestJumboBatchSizeAmortizesQueueOps(t *testing.T) {
	count := func(batch int) uint64 {
		topo := Topology{
			App:       pipelineGraph(t),
			Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(4096)},
			Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
		}
		cfg := DefaultConfig()
		cfg.BatchSize = batch
		e, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		var puts uint64
		for _, task := range e.tasks {
			if task.in != nil {
				p, _ := task.in.Stats()
				puts += p
			}
		}
		return puts
	}
	single := count(1)
	batched := count(64)
	if batched*16 > single {
		t.Errorf("batch=64 used %d insertions vs %d at batch=1; jumbo tuples should amortize by ~64x", batched, single)
	}
}

// TestStopNilsNothing ensures a second Run on a fresh engine instance is
// not required for correct shutdown bookkeeping (queues closed exactly
// once, counters coherent).
func TestShutdownBookkeeping(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(100)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Every queue must be closed and drained.
	for _, task := range e.tasks {
		if task.in == nil {
			continue
		}
		if task.in.Len() != 0 {
			t.Errorf("task %s queue retains %d batches after shutdown", task.label, task.in.Len())
		}
		puts, gets := task.in.Stats()
		if puts != gets {
			t.Errorf("task %s: %d puts vs %d gets", task.label, puts, gets)
		}
	}
	if res.SinkTuples != 200 {
		t.Errorf("sink tuples = %d", res.SinkTuples)
	}
}
