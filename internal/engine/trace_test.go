package engine

// End-to-end tracing coverage: a sampled spout tuple must leave a
// source span plus one hop span per operator it crosses, the hop times
// must ascend, the queue-wait counters must account for the batches the
// run moved, and the analyzer's per-operator attribution must sum to
// the traced end-to-end latency.

import (
	"testing"
	"time"

	"briskstream/internal/obs"
)

func TestTraceEndToEnd(t *testing.T) {
	const n = 4000
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(n)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.TraceSampleEvery = 16
	cfg.Linger = time.Millisecond // keep queue waits visible but short
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	e.RegisterTrace(tracer)
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}

	traces := tracer.Traces(0)
	if len(traces) == 0 {
		t.Fatal("no traces captured")
	}
	complete := 0
	for _, tc := range traces {
		if tc.ID == 0 {
			t.Fatal("trace with zero id")
		}
		for i, s := range tc.Spans {
			if i > 0 && s.AtNs < tc.Spans[i-1].AtNs {
				t.Fatalf("trace %d: hop times not monotonic: %+v", tc.ID, tc.Spans)
			}
			switch s.Op {
			case "spout", "double", "sink":
			default:
				t.Fatalf("trace %d: span on unknown operator %q", tc.ID, s.Op)
			}
		}
		// A fully-propagated trace crosses spout -> double -> sink; the
		// doubler emits twice, so such traces carry >= 4 spans (the sink
		// sees the traced tuple twice).
		if len(tc.Spans) >= 3 {
			complete++
			if tc.Spans[0].Kind != "source" || tc.Spans[0].Op != "spout" {
				t.Fatalf("trace %d does not start at the spout: %+v", tc.ID, tc.Spans[0])
			}
			var attributed int64
			prev := tc.OriginNs
			for _, s := range tc.Spans[1:] {
				if s.QueueWaitNs < 0 || s.ServiceNs < 0 {
					t.Fatalf("trace %d: negative attribution %+v", tc.ID, s)
				}
				// Queue wait plus service of any hop cannot exceed the
				// elapsed time since the trace origin (small slack for
				// the sub-clock-resolution stamps).
				if s.QueueWaitNs+s.ServiceNs > s.AtNs-tc.OriginNs+int64(time.Millisecond) {
					t.Fatalf("trace %d: queue+service %dns exceeds elapsed %dns", tc.ID, s.QueueWaitNs+s.ServiceNs, s.AtNs-tc.OriginNs)
				}
				attributed += s.AtNs - prev
				prev = s.AtNs
			}
			if attributed != tc.E2eNs {
				t.Fatalf("trace %d: hop intervals sum to %dns, e2e %dns", tc.ID, attributed, tc.E2eNs)
			}
		}
	}
	if complete == 0 {
		t.Fatal("no trace propagated across all three operators")
	}

	// The per-batch queue-wait accounting must have covered real batches
	// and must surface through the profile snapshot.
	snap := e.ProfileSnapshot()
	byOp := snap.ByOp()
	var waitBatches uint64
	for op, tot := range byOp {
		if op == "spout" {
			continue
		}
		waitBatches += tot.QueueWaitBatch
	}
	if waitBatches == 0 {
		t.Fatal("no queue-wait batches accounted")
	}

	// Analyzer: the breakdown's per-operator parts sum to the mean e2e
	// (the acceptance bound is 10%; the construction makes it exact up
	// to clamping, so assert 10% with headroom for clamped hops).
	an := tracer.Analyze()
	if an.Traces == 0 {
		t.Fatal("analyzer saw no complete traces")
	}
	var attributed float64
	for _, op := range an.Ops {
		attributed += op.QueueNs + op.ServiceNs + op.TransferNs
	}
	if an.MeanE2eNs <= 0 {
		t.Fatalf("mean e2e = %.0f", an.MeanE2eNs)
	}
	if diff := attributed - an.MeanE2eNs; diff > an.MeanE2eNs*0.1 || diff < -an.MeanE2eNs*0.1 {
		t.Fatalf("attributed %.0fns vs mean e2e %.0fns: off by more than 10%%", attributed, an.MeanE2eNs)
	}
}

func TestTraceOffByDefault(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": boundedSpoutEOF(256)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer()
	e.RegisterTrace(tracer)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if n := tracer.Len(); n != 0 {
		t.Fatalf("TraceSampleEvery unset but %d spans captured", n)
	}
}
