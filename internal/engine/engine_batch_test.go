package engine

// Columnar-path guards: edges to batch-aware consumers must actually be
// wired columnar under the default configuration (the vectorized path
// is on by default, not an opt-in easter egg), batch gating must honor
// WantsBatches, and the emit→dispatch→consume loop over columnar
// batches must be allocation-free in steady state — the batch arena,
// the column lanes, the jumbo header and the batch object itself all
// recycle.

import (
	"io"
	"testing"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// batchSink is a batch-aware discarding sink.
type batchSink struct{}

func (batchSink) Process(Collector, *tuple.Tuple) error      { return nil }
func (batchSink) ProcessBatch(Collector, *tuple.Batch) error { return nil }

// gatedSink is batch-capable but asks for scalar input.
type gatedSink struct{ batchSink }

func (gatedSink) WantsBatches() bool { return false }

// buildBatchEngine wires spout -> sink with the given sink builder.
func buildBatchEngine(t *testing.T, cfg Config, mk func() Operator) *Engine {
	t.Helper()
	g := graph.New("batch")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := New(Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return SpoutFunc(func(c Collector) error { return io.EOF })
		}},
		Operators: map[string]func() Operator{"sink": mk},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestColumnarEdgeWiring(t *testing.T) {
	edgeOf := func(e *Engine) *outEdge { return e.byOp["spout"][0].outList[0] }

	// Batch-aware consumer under the default config: columnar.
	cfg := DefaultConfig()
	cfg.Columnar = true // immune to BRISK_BATCH=0 in the environment
	if oe := edgeOf(buildBatchEngine(t, cfg, func() Operator { return batchSink{} })); !oe.columnar || oe.colFree == nil {
		t.Error("edge to a BatchOperator consumer is not columnar under the default config")
	}
	// Scalar consumer: scalar edge.
	if oe := edgeOf(buildBatchEngine(t, cfg, sinkOp)); oe.columnar {
		t.Error("edge to a scalar consumer wired columnar without ColumnarAll")
	}
	// WantsBatches()==false opts a batch-capable consumer out.
	if oe := edgeOf(buildBatchEngine(t, cfg, func() Operator { return gatedSink{} })); oe.columnar {
		t.Error("edge to a WantsBatches()==false consumer wired columnar")
	}
	// ColumnarAll overrides both.
	cfg.ColumnarAll = true
	if oe := edgeOf(buildBatchEngine(t, cfg, sinkOp)); !oe.columnar {
		t.Error("ColumnarAll left a scalar-consumer edge scalar")
	}
	// Columnar off: nothing is columnar.
	cfg = DefaultConfig()
	cfg.Columnar = false
	cfg.ColumnarAll = false
	if oe := edgeOf(buildBatchEngine(t, cfg, func() Operator { return batchSink{} })); oe.columnar {
		t.Error("edge wired columnar with Columnar disabled")
	}
	// Columnar requires the BriskStream transport (pass-by-reference
	// jumbos): the Storm-like emulation stays scalar.
	storm := StormLikeConfig()
	storm.Columnar = true
	if oe := edgeOf(buildBatchEngine(t, storm, func() Operator { return batchSink{} })); oe.columnar {
		t.Error("edge wired columnar in Storm-like (serialize) mode")
	}
}

// columnarHarness builds a spout->sink edge with batch-aware sink
// replicas and returns the producer's collector plus a drain that
// consumes queued batch jumbos the way runTask does — through
// consumeBatch, so drained batches recycle onto the edge's reverse free
// ring and the producer's getBatch never allocates in steady state.
func columnarHarness(t *testing.T, cfg Config, consumers int, part graph.Partitioning) (*collector, func()) {
	t.Helper()
	g := graph.New("alloc")
	g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "spout", To: "sink", Stream: "default", Partitioning: part, KeyField: 0})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := New(Topology{
		App: g,
		Spouts: map[string]func() Spout{"spout": func() Spout {
			return SpoutFunc(func(c Collector) error { return io.EOF })
		}},
		Operators:   map[string]func() Operator{"sink": func() Operator { return batchSink{} }},
		Replication: map[string]int{"sink": consumers},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	producer := e.byOp["spout"][0]
	sinks := e.byOp["sink"]
	cols := make([]*collector, len(sinks))
	for i, ct := range sinks {
		cols[i] = &collector{e: e, t: ct}
	}
	for _, oe := range producer.outList {
		if !oe.columnar {
			t.Fatal("harness edge is not columnar")
		}
	}
	drain := func() {
		for i, ct := range sinks {
			for {
				j, ok, _ := ct.in.TryGet()
				if !ok {
					break
				}
				if err := e.consumeJumbo(ct, cols[i], j); err != nil {
					panic(err)
				}
			}
		}
	}
	return &collector{e: e, t: producer}, drain
}

func TestEmitDispatchAllocFreeColumnar(t *testing.T) {
	for _, part := range []graph.Partitioning{graph.Shuffle, graph.Fields} {
		cfg := DefaultConfig()
		cfg.Columnar = true        // immune to BRISK_BATCH=0 in the environment
		cfg.LatencySampleEvery = 0 // time.Now stamping is not the measured path
		c, drain := columnarHarness(t, cfg, 4, part)
		emit := func() {
			out := c.Borrow()
			out.AppendStr("the quick brown fox")
			out.AppendInt(100042)
			c.Send(out)
			drain()
		}
		for i := 0; i < 2000; i++ {
			emit() // warm pools, batch arenas and the reverse free rings
		}
		avg := testing.AllocsPerRun(5000, emit)
		if avg > 0 {
			t.Errorf("%v: columnar emit->dispatch->consume allocates %.4f/op, want 0", part, avg)
		}
	}
}
