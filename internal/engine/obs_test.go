package engine

// Race coverage for live telemetry: HTTP scrapes of /metrics and
// /events must be safe — and every exposed line well-formed — while
// the engine underneath is run, checkpointed, killed and restored.
// Run with -race this is the proof that RegisterObs reads only atomics
// and properly-locked registry state.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/obs"
)

func TestObsScrapeRaceAcrossKillRestore(t *testing.T) {
	co := checkpoint.NewCoordinator(nil)
	spout := &seqSpout{replica: 0, limit: 1 << 62}
	agg := newSumOp()
	topo := Topology{
		App:       sinkGraph(t, 1),
		Spouts:    map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{"agg": func() Operator { return agg }},
	}
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 2 * time.Millisecond
	cfg.TraceSampleEvery = 8

	reg := obs.NewRegistry(0)
	jr := obs.NewJournal(0)
	tracer := obs.NewTracer()
	srv, err := obs.Serve("127.0.0.1:0", reg, jr, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrapers hammer both endpoints for the whole kill/restore cycle;
	// every /metrics body must parse as exposition format no matter what
	// phase the engine is in.
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	var scrapes atomic.Uint64
	scraper := func(path string, check func([]byte) error) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL() + path)
			if err != nil {
				continue // server teardown race at test end
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			if resp.StatusCode != http.StatusOK {
				select {
				case scrapeErr <- io.ErrUnexpectedEOF:
				default:
				}
				return
			}
			if check != nil {
				if err := check(body); err != nil {
					select {
					case scrapeErr <- err:
					default:
					}
					return
				}
			}
			scrapes.Add(1)
		}
	}
	go scraper("/metrics", obs.ValidateExposition)
	go scraper("/events", nil)
	validJSON := func(b []byte) error {
		if !json.Valid(b) {
			return fmt.Errorf("invalid JSON body: %.120s", b)
		}
		return nil
	}
	go scraper("/traces", validJSON)
	go scraper("/traces?fmt=chrome", validJSON)

	// Three engine generations over the same coordinator: run, wait for
	// a couple of completed checkpoints, kill, restore into the next
	// generation — re-registering each generation into the same group
	// while the scrapers read it.
	for cycle := 0; cycle < 3; cycle++ {
		e, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.RegisterObs(reg.Group("engine"), jr)
		e.RegisterTrace(tracer)
		if cycle > 0 {
			if _, err := e.Restore(); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan *Result, 1)
		go func() {
			res, _ := e.Run(0)
			done <- res
		}()
		floor := co.Completed() + 2
		if !waitFor(10*time.Second, func() bool { return co.Completed() >= floor && e.SinkCount() > 0 }) {
			t.Fatal("no checkpoint completed within the deadline")
		}
		e.Kill()
		res := <-done
		if len(res.Errors) != 0 {
			t.Fatalf("cycle %d errors: %v", cycle, res.Errors)
		}
	}
	close(stop)
	select {
	case err := <-scrapeErr:
		t.Fatalf("scrape failed: %v", err)
	default:
	}
	if scrapes.Load() == 0 {
		t.Fatal("scrapers never completed a request")
	}

	// The journal must carry the whole lifecycle.
	evs := jr.Events(0)
	seen := map[string]int{}
	for _, ev := range evs {
		seen[ev.Type]++
	}
	for _, want := range []string{"run_start", "run_stop", "kill", "restore", "checkpoint_begin", "checkpoint_complete"} {
		if seen[want] == 0 {
			t.Errorf("journal has no %q event (saw %v)", want, seen)
		}
	}
	// Seqs must ascend strictly.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("journal seq not ascending: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestObsRegisterReplacesSeries pins the adaptive-segment contract: a
// second engine registered into the same group replaces the first's
// series instead of accumulating dead ones.
func TestObsRegisterReplacesSeries(t *testing.T) {
	topo := Topology{
		App:       sinkGraph(t, 1),
		Spouts:    map[string]func() Spout{"spout": func() Spout { return &seqSpout{limit: 4} }},
		Operators: map[string]func() Operator{"agg": func() Operator { return newSumOp() }},
	}
	reg := obs.NewRegistry(0)
	jr := obs.NewJournal(0)
	for i := 0; i < 2; i++ {
		e, err := New(topo, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		e.RegisterObs(reg.Group("engine"), jr)
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "# TYPE brisk_sink_tuples_total"); n != 1 {
		t.Fatalf("expected exactly one brisk_sink_tuples_total family after re-registration, got %d\n%s", n, b.String())
	}
}
