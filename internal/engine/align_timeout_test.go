package engine

// Regression coverage for Config.AlignTimeout, the barrier-alignment
// skew bound: a fan-in task whose slow producer edge withholds its
// barrier must abandon the checkpoint attempt at the deadline and
// replay the jumbos the alignment parked — bounding parked memory by
// the timeout — without dropping a single data tuple.

import (
	"io"
	"testing"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// pacedSpout emits 1..limit, sleeping delay before each tuple.
type pacedSpout struct {
	n, limit int64
	delay    time.Duration
}

func (s *pacedSpout) Next(c Collector) error {
	if s.n >= s.limit {
		return io.EOF
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.n++
	out := c.Borrow()
	out.AppendInt(s.n)
	c.Send(out)
	return nil
}

func TestAlignTimeoutAbandonsSkewedAlignmentWithoutLoss(t *testing.T) {
	g := graph.New("align-timeout")
	g.AddNode(&graph.Node{Name: "fast", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "slow", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "merge", Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "fast", To: "merge", Stream: "default"})
	g.AddEdge(graph.Edge{From: "slow", To: "merge", Stream: "default"})
	g.AddEdge(graph.Edge{From: "merge", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	co := checkpoint.NewCoordinator(nil)
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 30 * time.Millisecond
	cfg.AlignTimeout = 10 * time.Millisecond
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{
			// The fast source outlives the run; the slow one's barriers lag
			// each checkpoint request by up to its inter-tuple sleep, far
			// past the align timeout.
			"fast": func() Spout { return &pacedSpout{limit: 1 << 40} },
			"slow": func() Spout { return &pacedSpout{limit: 1 << 40, delay: 150 * time.Millisecond} },
		},
		Operators: map[string]func() Operator{
			"merge": func() Operator {
				return OperatorFunc(func(c Collector, in *tuple.Tuple) error {
					forwardTuple(c, in)
					return nil
				})
			},
			"sink": func() Operator {
				return OperatorFunc(func(c Collector, in *tuple.Tuple) error { return nil })
			},
		},
	}
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.AlignTimeouts == 0 {
		t.Fatal("no alignment timed out despite a 150ms-skewed producer and a 10ms bound")
	}
	// Abandoning an alignment drops only the checkpoint attempt, never
	// data: everything both sources emitted flows through the fan-in
	// (parked batches replayed) and reaches the sink.
	emitted := res.Processed["fast"] + res.Processed["slow"]
	if res.Processed["merge"] != emitted {
		t.Fatalf("merge processed %d of %d emitted tuples (parked input lost?)",
			res.Processed["merge"], emitted)
	}
	if res.SinkTuples != res.Processed["merge"] {
		t.Fatalf("sink received %d of %d forwarded tuples", res.SinkTuples, res.Processed["merge"])
	}
}

// TestAlignTimeoutStaleTimerIsNoOp: a timeout armed for an alignment
// that completed in time must not disturb the next alignment (the
// attempt sequence gates firing).
func TestAlignTimeoutStaleTimerIsNoOp(t *testing.T) {
	g := graph.New("align-timeout-stale")
	g.AddNode(&graph.Node{Name: "a", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "b", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
	g.AddNode(&graph.Node{Name: "sink", IsSink: true})
	g.AddEdge(graph.Edge{From: "a", To: "sink", Stream: "default"})
	g.AddEdge(graph.Edge{From: "b", To: "sink", Stream: "default"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	co := checkpoint.NewCoordinator(nil)
	cfg := DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = 5 * time.Millisecond
	cfg.AlignTimeout = 200 * time.Millisecond // generous: alignments complete in time
	topo := Topology{
		App: g,
		Spouts: map[string]func() Spout{
			// Both sources are prompt, so every alignment completes well
			// inside the bound and every armed timer goes stale.
			"a": func() Spout { return &pacedSpout{limit: 1 << 40, delay: time.Millisecond} },
			"b": func() Spout { return &pacedSpout{limit: 1 << 40, delay: time.Millisecond} },
		},
		Operators: map[string]func() Operator{
			"sink": func() Operator {
				return OperatorFunc(func(c Collector, in *tuple.Tuple) error { return nil })
			},
		},
	}
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if res.AlignTimeouts != 0 {
		t.Fatalf("%d alignments timed out under a generous bound", res.AlignTimeouts)
	}
	if co.Completed() == 0 {
		t.Fatal("no checkpoint completed despite prompt sources")
	}
	if res.SinkTuples != res.Processed["a"]+res.Processed["b"] {
		t.Fatalf("sink received %d of %d tuples", res.SinkTuples, res.Processed["a"]+res.Processed["b"])
	}
}
