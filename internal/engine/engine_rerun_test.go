package engine

// Regression tests for engine reuse: Run used to leave the sink
// counter, latency histogram and per-task processed counters populated
// (double-counting a second run) and the task queues closed (so a
// second run could not transfer a single tuple).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"briskstream/internal/graph"
	"briskstream/internal/tuple"
)

// rewindingSpout emits n tuples, returns io.EOF, and rewinds so the
// next Run replays the same stream.
func rewindingSpout(n int) func() Spout {
	return func() Spout {
		i := 0
		return SpoutFunc(func(c Collector) error {
			if i >= n {
				i = 0
				return ioEOF
			}
			c.Emit(int64(i))
			i++
			return nil
		})
	}
}

func TestRunTwiceDoesNotDoubleCount(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 3; run++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatalf("run %d errors: %v", run, res.Errors)
		}
		if res.SinkTuples != 2000 {
			t.Fatalf("run %d: sink tuples = %d, want 2000 (no carry-over between runs)", run, res.SinkTuples)
		}
		if res.Processed["spout"] != 1000 || res.Processed["double"] != 1000 {
			t.Fatalf("run %d: processed = %v, want 1000 each", run, res.Processed)
		}
		if res.QueuePuts == 0 || res.QueueGets == 0 {
			t.Fatalf("run %d: queue stats empty", run)
		}
		if res.QueuePuts != res.QueueGets {
			t.Fatalf("run %d: per-run queue stats unbalanced: puts %d gets %d", run, res.QueuePuts, res.QueueGets)
		}
	}
}

func TestRunTwiceResetsLatency(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(2000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.LatencySampleEvery = 10
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency.Count() == 0 || r2.Latency.Count() == 0 {
		t.Fatalf("latency not sampled: %d / %d", r1.Latency.Count(), r2.Latency.Count())
	}
	if r2.Latency.Count() > r1.Latency.Count()*2 {
		t.Fatalf("second run accumulated first run's samples: %d then %d",
			r1.Latency.Count(), r2.Latency.Count())
	}
}

// rerunSpout replays a watermark/tuple script. The test rewinds it (and
// flips it between spin-at-stopAt and run-to-EOF) between runs.
type rerunSpout struct {
	actions []wmAction
	i       int
	stopAt  int // spin (emit nothing, no EOF) once i reaches stopAt; -1 disables
}

func (s *rerunSpout) Next(c Collector) error {
	if s.stopAt >= 0 && s.i >= s.stopAt {
		return nil // spin: the duration bound kills this run
	}
	if s.i >= len(s.actions) {
		return ioEOF
	}
	a := s.actions[s.i]
	s.i++
	if a.tup {
		out := c.Borrow()
		out.AppendInt(a.emit)
		out.Event = a.emit
		c.Send(out)
	} else {
		c.EmitWatermark(a.wm)
	}
	return nil
}

// rerunProbe registers two event timers at the start of every run (the
// first tuples of a run arrive while the task watermark is still
// WatermarkMin) and logs every timer fire and watermark advance.
type rerunProbe struct {
	tm  *Timers
	mu  sync.Mutex
	log []string
}

func (p *rerunProbe) SetTimers(tm *Timers) { p.tm = tm }

func (p *rerunProbe) Process(c Collector, t *tuple.Tuple) error {
	if p.tm.Watermark() == WatermarkMin && t.Int(0) == 5 {
		p.tm.RegisterEvent(9)
		p.tm.RegisterEvent(25)
	}
	return nil
}

func (p *rerunProbe) OnTimer(c Collector, kind TimerKind, at int64) error {
	if kind == EventTimer {
		p.rec(fmt.Sprintf("timer:%d", at))
	}
	return nil
}

func (p *rerunProbe) OnWatermark(c Collector, wm int64) error {
	if wm == WatermarkMax {
		p.rec("wm:max")
	} else {
		p.rec(fmt.Sprintf("wm:%d", wm))
	}
	return nil
}

func (p *rerunProbe) rec(s string) {
	p.mu.Lock()
	p.log = append(p.log, s)
	p.mu.Unlock()
}

// TestRerunResetsTimersAndWatermarkCursors is the recovery-path hygiene
// regression: a killed run leaves a pending event timer (registered at
// 25, watermark only reached 17) and populated watermark cursors; the
// restarted runs must see fresh wheels and cursors — a leaked wheel
// fires the ghost timer a second time, leaked wmIn cursors suppress the
// rerun's watermark advances entirely.
func TestRerunResetsTimersAndWatermarkCursors(t *testing.T) {
	script := []wmAction{
		tupAt(5), wmAt(9), tupAt(17), wmAt(17), tupAt(30), wmAt(30),
	}
	g := graph.New("rerun")
	for _, n := range []*graph.Node{
		{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}},
		{Name: "probe", Selectivity: map[string]float64{"default": 1}},
		{Name: "sink", IsSink: true},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(graph.Edge{From: "spout", To: "probe", Stream: "default"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(graph.Edge{From: "probe", To: "sink", Stream: "default"}); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	spout := &rerunSpout{actions: script, stopAt: 4} // stop past wm 17: timer 25 left pending
	probe := &rerunProbe{}
	topo := Topology{
		App:       g,
		Spouts:    map[string]func() Spout{"spout": func() Spout { return spout }},
		Operators: map[string]func() Operator{"probe": func() Operator { return probe }, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Run 1: killed by the duration bound with the timer at 25 pending.
	if _, err := e.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Runs 2 and 3: full script to EOF; each must produce the exact
	// fresh-engine log.
	want := "[timer:9 wm:9 wm:17 timer:25 wm:30 wm:max]"
	for run := 2; run <= 3; run++ {
		spout.stopAt = -1
		spout.i = 0
		probe.log = probe.log[:0]
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatalf("run %d errors: %v", run, res.Errors)
		}
		if got := fmt.Sprintf("%v", probe.log); got != want {
			t.Fatalf("run %d event log = %s, want %s (stale timer wheel or watermark cursor)", run, got, want)
		}
	}
}

// TestRunTwiceShuffleCursorsReset: shuffle round-robin cursors must
// restart at their wiring-time phase each run, so a recovery replay
// distributes tuples exactly like the original run — otherwise a
// restored run's routing (and thus any replica-local state) diverges
// from the failure-free execution.
func TestRunTwiceShuffleCursorsReset(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(999)},
		Operators: map[string]func() Operator{"double": passthrough, "sink": sinkOp},
		Replication: map[string]int{
			"double": 3,
		},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := func() []uint64 {
		out := []uint64{}
		for _, dt := range e.byOp["double"] {
			out = append(out, atomic.LoadUint64(&dt.processed))
		}
		return out
	}
	res1, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Errors) != 0 {
		t.Fatal(res1.Errors)
	}
	first := counts()
	for run := 2; run <= 3; run++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatal(res.Errors)
		}
		if got := counts(); sprintf("%v", got) != sprintf("%v", first) {
			t.Fatalf("run %d shuffle distribution %v differs from run 1's %v (rr cursor leaked across runs)", run, got, first)
		}
	}
	// 999 tuples over 3 replicas starting at the wiring phase: exact
	// uniform split, same every run.
	for i, n := range first {
		if n != 333 {
			t.Fatalf("replica %d got %d tuples, want 333", i, n)
		}
	}
}

func TestRunTwiceDurationBounded(t *testing.T) {
	infinite := func() Spout {
		return SpoutFunc(func(c Collector) error {
			c.Emit(int64(1))
			return nil
		})
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": infinite},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := e.Run(50 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if res.SinkTuples == 0 {
			t.Fatalf("run %d moved no tuples (queues not reopened?)", run+1)
		}
	}
}
