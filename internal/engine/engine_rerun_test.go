package engine

// Regression tests for engine reuse: Run used to leave the sink
// counter, latency histogram and per-task processed counters populated
// (double-counting a second run) and the task queues closed (so a
// second run could not transfer a single tuple).

import (
	"testing"
	"time"
)

// rewindingSpout emits n tuples, returns io.EOF, and rewinds so the
// next Run replays the same stream.
func rewindingSpout(n int) func() Spout {
	return func() Spout {
		i := 0
		return SpoutFunc(func(c Collector) error {
			if i >= n {
				i = 0
				return ioEOF
			}
			c.Emit(int64(i))
			i++
			return nil
		})
	}
}

func TestRunTwiceDoesNotDoubleCount(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(1000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 3; run++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Errors) != 0 {
			t.Fatalf("run %d errors: %v", run, res.Errors)
		}
		if res.SinkTuples != 2000 {
			t.Fatalf("run %d: sink tuples = %d, want 2000 (no carry-over between runs)", run, res.SinkTuples)
		}
		if res.Processed["spout"] != 1000 || res.Processed["double"] != 1000 {
			t.Fatalf("run %d: processed = %v, want 1000 each", run, res.Processed)
		}
		if res.QueuePuts == 0 || res.QueueGets == 0 {
			t.Fatalf("run %d: queue stats empty", run)
		}
		if res.QueuePuts != res.QueueGets {
			t.Fatalf("run %d: per-run queue stats unbalanced: puts %d gets %d", run, res.QueuePuts, res.QueueGets)
		}
	}
}

func TestRunTwiceResetsLatency(t *testing.T) {
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": rewindingSpout(2000)},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	cfg := DefaultConfig()
	cfg.LatencySampleEvery = 10
	e, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Latency.Count() == 0 || r2.Latency.Count() == 0 {
		t.Fatalf("latency not sampled: %d / %d", r1.Latency.Count(), r2.Latency.Count())
	}
	if r2.Latency.Count() > r1.Latency.Count()*2 {
		t.Fatalf("second run accumulated first run's samples: %d then %d",
			r1.Latency.Count(), r2.Latency.Count())
	}
}

func TestRunTwiceDurationBounded(t *testing.T) {
	infinite := func() Spout {
		return SpoutFunc(func(c Collector) error {
			c.Emit(int64(1))
			return nil
		})
	}
	topo := Topology{
		App:       pipelineGraph(t),
		Spouts:    map[string]func() Spout{"spout": infinite},
		Operators: map[string]func() Operator{"double": doubler, "sink": sinkOp},
	}
	e, err := New(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := e.Run(50 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if res.SinkTuples == 0 {
			t.Fatalf("run %d moved no tuples (queues not reopened?)", run+1)
		}
	}
}
