package briskstream

// Public-API telemetry tests: RunConfig.Obs must serve live,
// well-formed metrics and journal events while an adaptive run
// profiles, checkpoints and rescales underneath — and the run's output
// must be byte-identical to an unobserved one.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"briskstream/internal/obs"
)

func TestObsServesDuringAdaptiveRescale(t *testing.T) {
	const limit, pivot = 80000, 20000
	sink := &multisetSink{got: map[string]int64{}}
	topo := buildSkewWC(limit, pivot, sink)

	var mu sync.Mutex
	events := map[string]int{}
	addrCh := make(chan string, 1)

	done := make(chan struct{})
	var res *RunResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = topo.Run(RunConfig{
			Adaptive: &AdaptiveConfig{
				Machine:     SyntheticMachine("autoscale", 2, 8),
				Stats:       skewStats(),
				Interval:    15 * time.Millisecond,
				SampleEvery: 8,
				Drift:       0.2,
				Gain:        0.05,
				MaxRescales: 2,
			},
			Obs: &ObsConfig{Addr: "127.0.0.1:0", Window: 10 * time.Second, TraceEvery: 16},
			OnEvent: func(ev ObsEvent) {
				mu.Lock()
				events[ev.Type]++
				mu.Unlock()
				if ev.Type == "obs_serving" {
					addrCh <- ev.Attrs["addr"]
				}
			},
		})
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-done:
		t.Fatalf("run finished before serving telemetry: %v", runErr)
	case <-time.After(10 * time.Second):
		t.Fatal("telemetry server never announced itself")
	}

	// Scrape every endpoint for the whole run — through every segment
	// kill, restore and re-registration — validating each body.
	var scrapes int
	var lastMetrics, lastTraces string
	for {
		select {
		case <-done:
		default:
			resp, err := http.Get(base + "/metrics")
			if err == nil {
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK {
					if err := obs.ValidateExposition(body); err != nil {
						t.Fatalf("malformed exposition mid-run: %v", err)
					}
					lastMetrics = string(body)
					scrapes++
				}
			}
			if resp, err := http.Get(base + "/events"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			for _, path := range []string{"/traces", "/traces?fmt=chrome"} {
				resp, err := http.Get(base + path)
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK {
					if !json.Valid(body) {
						t.Fatalf("%s served invalid JSON mid-run: %.120s", path, body)
					}
					if path == "/traces" {
						lastTraces = string(body)
					}
				}
			}
			continue
		}
		break
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("run errors: %v", res.Errors)
	}
	if scrapes == 0 {
		t.Fatal("never completed a scrape during the run")
	}
	for _, want := range []string{"brisk_sink_tuples_total", "brisk_task_processed_total", "brisk_rescales_total", "brisk_sym_count", "brisk_task_queue_wait_ns_total"} {
		if !strings.Contains(lastMetrics, want) {
			t.Errorf("final scrape is missing family %s", want)
		}
	}
	if !strings.Contains(lastTraces, `"traces"`) {
		t.Errorf("/traces never served a traces document: %.120s", lastTraces)
	}

	mu.Lock()
	defer mu.Unlock()
	if events["run_start"] == 0 || events["run_stop"] == 0 {
		t.Errorf("missing run lifecycle events: %v", events)
	}
	if res.Rescales >= 1 {
		if events["rescale_begin"] == 0 || events["rescale_end"] == 0 {
			t.Errorf("run rescaled %d times but events = %v", res.Rescales, events)
		}
		if events["advisor_decision"] == 0 {
			t.Errorf("no advisor_decision event despite a rescale: %v", events)
		}
	}
	// Every settled rescale must have an audited outcome; outcomes can
	// trail rescales when the run ends before the measurement settles.
	if len(res.RescaleOutcomes) > res.Rescales {
		t.Errorf("%d outcomes for %d rescales", len(res.RescaleOutcomes), res.Rescales)
	}
	for _, o := range res.RescaleOutcomes {
		if o.At.IsZero() {
			t.Errorf("outcome with zero timestamp: %+v", o)
		}
	}
}

// TestOnEventWithoutServer pins the embedded-consumer path: OnEvent
// alone (no Obs, no listener) still activates the journal.
func TestOnEventWithoutServer(t *testing.T) {
	sink := &multisetSink{got: map[string]int64{}}
	topo := buildSkewWC(500, 250, sink)
	var mu sync.Mutex
	var types []string
	res, err := topo.Run(RunConfig{
		Replication: map[string]int{"src": 1, "split": 1, "count": 1, "sink": 1},
		OnEvent: func(ev ObsEvent) {
			mu.Lock()
			types = append(types, ev.Type)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("run errors: %v", res.Errors)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "run_start") || !strings.Contains(joined, "run_stop") {
		t.Fatalf("events = %v, want run_start and run_stop", types)
	}
}
