package briskstream

// Live telemetry for running topologies. RunConfig.Obs attaches a
// metric registry, an event journal, and (with Addr set) an HTTP
// server to the run: /metrics serves Prometheus text exposition,
// /statusz a JSON summary, /events the journal, /traces the sampled
// per-tuple traces (with TraceEvery set), /healthz liveness, and
// /debug/pprof/ the standard profiles. Everything is stdlib-only and
// reads the counters the engine already maintains — observability
// costs the data path one predictable branch at the sampled
// sink-latency site and nothing per tuple.

import (
	"strconv"
	"time"

	"briskstream/internal/engine"
	"briskstream/internal/obs"
	"briskstream/internal/tuple"
)

// ObsConfig enables live telemetry for a Run.
type ObsConfig struct {
	// Addr is the HTTP listen address (e.g. ":9090", "127.0.0.1:0").
	// Empty runs no server: metrics still aggregate and events still
	// reach RunConfig.OnEvent, which is how embedded callers consume
	// telemetry without opening a port.
	Addr string
	// Window is the widest rolling aggregation span for rates and
	// quantiles (default 60s; a 10s span is always published too).
	Window time.Duration
	// SampleEvery overrides the end-to-end latency sampling stride:
	// every k-th spout tuple is timestamped and measured at the sink
	// (default 64; 1 measures every tuple).
	SampleEvery int
	// SymWatermark overrides the interned-symbol count whose first
	// crossing is journaled as a "sym_watermark" event — the early
	// warning that unbounded key cardinality is being interned
	// (default 100000; negative disables the watch).
	SymWatermark int
	// TraceEvery enables end-to-end tracing: every k-th spout tuple is
	// stamped with a trace context and leaves one span per hop it
	// crosses. The server's /traces endpoint serves recent traces as
	// JSON or Chrome trace-event format (?fmt=chrome, Perfetto-
	// loadable), and /statusz carries the aggregated per-operator
	// bottleneck breakdown. Default 0 (tracing off).
	TraceEvery int
}

// ObsEvent is one structured lifecycle event (run start/stop,
// checkpoint begin/complete/timeout, advisor decisions, rescales).
// Seq increases monotonically per run session; Attrs carry
// event-specific details as strings.
type ObsEvent = obs.Event

// obsSession holds one Run's telemetry plumbing: the registry metric
// series pull from, the journal events append to, and the optional
// HTTP server exposing both.
type obsSession struct {
	reg    *obs.Registry
	jr     *obs.Journal
	tracer *obs.Tracer
	srv    *obs.Server
}

// startObs builds the session for one Run call: process-level gauges,
// the journal (with the caller's OnEvent hook armed before any event
// can fire), the intern-table watermark watch, and the HTTP server
// when an address is configured. Returns nil when cfg.Obs is nil and
// no OnEvent hook is set — the zero-cost default.
func startObs(cfg RunConfig) (*obsSession, error) {
	if cfg.Obs == nil && cfg.OnEvent == nil {
		return nil, nil
	}
	oc := cfg.Obs
	if oc == nil {
		oc = &ObsConfig{}
	}
	s := &obsSession{
		reg: obs.NewRegistry(oc.Window),
		jr:  obs.NewJournal(0),
	}
	if oc.TraceEvery > 0 {
		s.tracer = obs.NewTracer()
	}
	if cfg.OnEvent != nil {
		s.jr.SetOnEvent(cfg.OnEvent)
	}

	g := s.reg.Group("process")
	started := time.Now()
	g.Gauge("brisk_uptime_seconds", "Seconds since this Run's telemetry session started.", nil, func() float64 {
		return time.Since(started).Seconds()
	})
	g.Gauge("brisk_sym_count", "Interned symbol names alive in the process-wide table.", nil, func() float64 {
		return float64(tuple.SymCount())
	})
	g.Gauge("brisk_sym_bytes", "Bytes held by interned symbol names.", nil, func() float64 {
		return float64(tuple.SymBytes())
	})

	// Arm the intern-table early warning: the first crossing of the
	// watermark is a lifecycle event, because a topology interning an
	// unbounded key domain will otherwise only be noticed as slow
	// memory growth.
	wm := oc.SymWatermark
	if wm == 0 {
		wm = 100_000
	}
	if wm > 0 {
		tuple.SetSymWatermark(wm, func(count, bytes int) {
			s.jr.Emit(obs.Event{Type: "sym_watermark", Attrs: map[string]string{
				"count": strconv.Itoa(count),
				"bytes": strconv.Itoa(bytes),
			}})
		})
	}

	if oc.Addr != "" {
		srv, err := obs.Serve(oc.Addr, s.reg, s.jr, s.tracer)
		if err != nil {
			s.close()
			return nil, err
		}
		s.srv = srv
		// Journaled so callers binding to ":0" can discover the real
		// port through OnEvent instead of plumbing the server handle.
		s.jr.Emit(obs.Event{Type: "obs_serving", Attrs: map[string]string{"addr": srv.Addr()}})
	}
	return s, nil
}

// bindEngine points the session's engine metric group and journal at
// e. The adaptive loop rebinds each segment's fresh engine into the
// same group, replacing the dead engine's series.
func (s *obsSession) bindEngine(e *engine.Engine) {
	if s == nil {
		return
	}
	e.RegisterObs(s.reg.Group("engine"), s.jr)
	if s.tracer != nil {
		e.RegisterTrace(s.tracer)
	}
}

// status registers a /statusz extension on the session's server (no-op
// without a server or on a nil session).
func (s *obsSession) status(key string, fn func() any) {
	if s == nil || s.srv == nil {
		return
	}
	s.srv.SetStatus(key, fn)
}

// event appends one root-level lifecycle event (autoscaler decisions,
// rescales) to the journal. No-op on a nil session.
func (s *obsSession) event(typ string, attrs map[string]string) {
	if s == nil {
		return
	}
	s.jr.Emit(obs.Event{Type: typ, Attrs: attrs})
}

// close tears the session down: the symbol watch is disarmed (it
// captures the session's journal) and the server, if any, stops
// listening. Safe on a nil session.
func (s *obsSession) close() {
	if s == nil {
		return
	}
	tuple.SetSymWatermark(0, nil)
	if s.srv != nil {
		_ = s.srv.Close()
	}
}

// applyObsEngineConfig folds observability needs into the engine
// config: pool accounting on (recycle hit rates) and, when set, the
// latency sampling stride.
func applyObsEngineConfig(ecfg *engine.Config, cfg RunConfig) {
	if cfg.Obs == nil && cfg.OnEvent == nil {
		return
	}
	ecfg.TrackPools = true
	if cfg.Obs != nil && cfg.Obs.SampleEvery > 0 {
		ecfg.LatencySampleEvery = cfg.Obs.SampleEvery
	}
	if cfg.Obs != nil && cfg.Obs.TraceEvery > 0 {
		ecfg.TraceSampleEvery = cfg.Obs.TraceEvery
	}
}
