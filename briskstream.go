// Package briskstream is a shared-memory data stream processing system
// for multicore NUMA machines, reproducing "BriskStream: Scaling Data
// Stream Processing on Shared-Memory Multicore Architectures" (Zhang et
// al., SIGMOD 2019).
//
// The package offers three capabilities behind one topology API:
//
//   - Run: execute a streaming topology on the in-process engine
//     (operators as goroutines, pass-by-reference tuples, jumbo-tuple
//     batching, back-pressure).
//   - Optimize: derive a NUMA-aware execution plan — replication level
//     and socket placement per operator — with the RLAS optimizer
//     (rate-based performance model + branch-and-bound placement +
//     iterative bottleneck scaling).
//   - Simulate: predict the plan's steady-state behaviour on a described
//     machine (e.g. the paper's eight-socket servers) without running it.
//
// A minimal word-count:
//
//	t := briskstream.NewTopology("wc")
//	t.Spout("source", mkSource)
//	t.Operator("split", mkSplit).Subscribe("source", briskstream.Shuffle)
//	t.Operator("count", mkCount).Subscribe("split", briskstream.FieldsKey(0))
//	t.Sink("sink", mkSink).Subscribe("count", briskstream.Shuffle)
//	res, err := t.Run(briskstream.RunConfig{Duration: time.Second})
//
// # Module layout
//
// The repository is the single Go module "briskstream". The public API
// lives in this root package; cmd/ holds the CLI tools (briskbench,
// rlas, topo, profile), examples/ the runnable applications, and
// internal/ the implementation: engine (the shared-memory runtime),
// queue (lock-free SPSC rings + fan-in inboxes between tasks), tuple,
// graph, plan, model, bnb, rlas and placement (the optimizer stack),
// sim and baseline (the calibrated simulator), plus metrics, numa,
// apps, experiments and friends.
//
// # Building and testing
//
// Everything runs off the standard toolchain (or the equivalent
// Makefile targets: build, test, race, bench, vet):
//
//	go build ./...                                   # compile everything
//	go test ./...                                    # full test suite
//	go test -race ./internal/queue/ ./internal/engine/
//	go test -bench 'PutGet|EngineDispatch' -run xxx \
//	    ./internal/queue/ ./internal/engine/         # queue/dispatch microbenchmarks
//	go test -bench . -benchtime 1x .                 # paper artifacts as benchmarks
//	go run ./cmd/briskbench -engine 3s               # engine hot-path report
package briskstream

import (
	"cmp"
	"fmt"
	"time"

	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/graph"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

// Value is a dynamically typed tuple field for the convenience Emit
// surface; the allocation-free path writes typed slots (AppendInt,
// AppendStr, ...) and never boxes.
type Value = tuple.Value

// Tuple is one data item flowing on a stream, carrying schema-typed
// slots (int64/float64/bool plus arena-backed strings and interned
// symbols). Tuples handed to Process are pooled: they are valid until
// Process returns, and operators that keep one longer must Retain (and
// later Release) it. Numeric values read out of a tuple may be kept
// forever; strings read with Str from ordinary string fields are arena
// views valid only while the tuple is held (symbol fields return
// stable interned names). See the internal/tuple package doc for the
// full ownership contract.
type Tuple = tuple.Tuple

// Tuple schemas. Streams declare their typed layout at wiring time via
// Decl.Emits; the engine validates the first tuple of each declared
// route, so a mis-typed emit fails at its source.

// Schema declares the typed field layout of one output stream.
type Schema = tuple.Schema

// Field is one schema field (name + kind).
type Field = tuple.Field

// FieldKind identifies a slot type.
type FieldKind = tuple.Kind

// Slot kinds.
const (
	KindInt   = tuple.KindInt
	KindFloat = tuple.KindFloat
	KindBool  = tuple.KindBool
	KindStr   = tuple.KindStr
	KindSym   = tuple.KindSym
)

// NewSchema builds a stream schema from fields (see the field
// constructors IntField, FloatField, BoolField, StrField, SymField).
func NewSchema(fields ...Field) *Schema { return tuple.NewSchema(fields...) }

// Field constructors for schema declarations.
func IntField(name string) Field   { return tuple.IntField(name) }
func FloatField(name string) Field { return tuple.FloatField(name) }
func BoolField(name string) Field  { return tuple.BoolField(name) }
func StrField(name string) Field   { return tuple.StrField(name) }
func SymField(name string) Field   { return tuple.SymField(name) }

// Sym is an interned symbol id: the representation for low-cardinality
// hot strings (words, device ids). Symbol fields compare as integers,
// and their Str/Name text is stable for the process lifetime.
type Sym = tuple.Sym

// InternSym interns a symbol name (process-global, never evicted — use
// only for bounded sets, never unbounded per-tuple data).
func InternSym(name string) Sym { return tuple.InternSym(name) }

// Key is a typed grouping key extracted from a tuple field
// (Tuple.Key); window operators receive it in their Emit callbacks and
// re-emit it with Tuple.AppendKey.
type Key = tuple.Key

// StreamID is an interned stream identifier; resolve names once with
// Stream and assign the id to Tuple.Stream for allocation-free emission
// on named streams via Collector.Borrow/Send.
type StreamID = tuple.StreamID

// DefaultStreamID is the interned id of DefaultStream (the zero value,
// which Borrow-ed tuples carry by default).
const DefaultStreamID = tuple.DefaultStreamID

// Stream interns a stream name, returning its StreamID. Call it at
// operator construction (wiring) time, not per tuple.
func Stream(name string) StreamID { return tuple.Intern(name) }

// Collector receives emitted tuples during an operator invocation.
// Emit/EmitTo copy variadic values into pooled tuples; the
// allocation-free surface is Borrow (get a pooled tuple, fill Values
// and optionally Stream) followed by Send (transfer it to the engine).
type Collector = engine.Collector

// Operator processes one input tuple per invocation.
type Operator = engine.Operator

// OperatorFunc adapts a function to Operator.
type OperatorFunc = engine.OperatorFunc

// Spout produces input tuples; return io.EOF from Next to end the stream.
type Spout = engine.Spout

// SpoutFunc adapts a function to Spout.
type SpoutFunc = engine.SpoutFunc

// RouteError reports a tuple that could not be routed by a
// fields-grouping key (the tuple is narrower than the declared key
// field); it surfaces in RunResult.Errors, match with errors.As.
type RouteError = engine.RouteError

// Event time and timers. Tuples carry an event timestamp (Tuple.Event,
// int64 event-time units — milliseconds by convention); sources stamp
// it and punctuate progress with Collector.EmitWatermark. The engine
// broadcasts watermarks to every consumer replica, min-merges them at
// fan-in, and fires event-time timers on each task's execution
// goroutine. Operators opt in by implementing TimerAware (to receive
// the per-task Timers service) plus TimerHandler and/or
// WatermarkHandler. The internal/window package builds tumbling,
// sliding and session windows on these hooks.

// Timers is the per-task timer service (event-time and
// processing-time hashed timer wheels).
type Timers = engine.Timers

// TimerKind distinguishes event-time from processing-time timers.
type TimerKind = engine.TimerKind

// EventTimer and ProcTimer are the TimerKind values.
const (
	EventTimer = engine.EventTimer
	ProcTimer  = engine.ProcTimer
)

// TimerAware operators receive their task's Timers before the run.
type TimerAware = engine.TimerAware

// TimerHandler operators receive OnTimer callbacks on their task's
// goroutine.
type TimerHandler = engine.TimerHandler

// WatermarkHandler operators observe every watermark advance.
type WatermarkHandler = engine.WatermarkHandler

// Watermark sentinels: WatermarkMax flushes all event time (broadcast
// automatically when a finite spout EOFs); WatermarkIdle excludes a
// source from downstream fan-in merges while it has no data.
const (
	WatermarkMax  = engine.WatermarkMax
	WatermarkIdle = engine.WatermarkIdle
)

// WindowSpan is one window's half-open event-time interval.
type WindowSpan = window.Span

// WindowOp configures a keyed tumbling/sliding window aggregation; see
// the internal/window package doc for semantics.
type WindowOp[A any] = window.Op[A]

// SessionWindowOp configures keyed session windows.
type SessionWindowOp[A any] = window.SessionOp[A]

// NewWindow builds a tumbling/sliding window operator (library-boundary
// surface for internal/window.New).
func NewWindow[A any](cfg WindowOp[A]) Operator { return window.New(cfg) }

// NewSessionWindow builds a session window operator.
func NewSessionWindow[A any](cfg SessionWindowOp[A]) Operator { return window.NewSession(cfg) }

// Fault tolerance. With a checkpoint coordinator configured, the engine
// takes aligned-barrier checkpoints (Chandy–Lamport style): sources
// record replay offsets, every operator snapshot is taken at a
// consistent cut, and a checkpoint completes only when every task has
// acknowledged. Recovery restores the latest completed checkpoint and
// replays the sources from their recorded offsets. Operators with state
// opt in by implementing Snapshotter (the window operators do, given
// Save/Load codecs); sources opt in by implementing ReplayableSpout.

// Snapshotter is implemented by operators (and spouts with state beyond
// their offset) whose state must survive failure.
type Snapshotter = checkpoint.Snapshotter

// SnapshotEncoder and SnapshotDecoder are the deterministic binary
// (de)serialization surface snapshot payloads use.
type (
	SnapshotEncoder = checkpoint.Encoder
	SnapshotDecoder = checkpoint.Decoder
)

// ReplayableSpout is a source that can report and rewind to a stream
// offset, enabling post-checkpoint replay.
type ReplayableSpout = engine.ReplayableSpout

// Checkpoint is one completed global snapshot.
type Checkpoint = checkpoint.Checkpoint

// CheckpointStore persists completed checkpoints.
type CheckpointStore = checkpoint.Store

// CheckpointCoordinator tracks in-flight checkpoints and persists
// completed ones. One coordinator spans the failure-free run and the
// recovery run — it is where the recovered engine finds the snapshot.
type CheckpointCoordinator = checkpoint.Coordinator

// NewCheckpointCoordinator builds a coordinator over store (nil means
// in-memory).
func NewCheckpointCoordinator(store CheckpointStore) *CheckpointCoordinator {
	return checkpoint.NewCoordinator(store)
}

// NewMemoryCheckpointStore keeps checkpoints in process memory
// (recovery from soft failures within one process lifetime).
func NewMemoryCheckpointStore() CheckpointStore { return checkpoint.NewMemoryStore() }

// NewFileCheckpointStore persists each checkpoint as one file under
// dir, surviving process death.
func NewFileCheckpointStore(dir string) (CheckpointStore, error) { return checkpoint.NewFileStore(dir) }

// SaveMapOrdered encodes a plain Go map deterministically (sorted keys,
// length prefix) — the byte-stable encoding Snapshotter implementations
// with hand-rolled map state should use instead of re-deriving it.
func SaveMapOrdered[K cmp.Ordered, V any](enc *SnapshotEncoder, m map[K]V, key func(*SnapshotEncoder, K), val func(*SnapshotEncoder, V)) {
	checkpoint.SaveMapOrdered(enc, m, key, val)
}

// LoadMapOrdered decodes a SaveMapOrdered encoding into m, replacing
// its contents.
func LoadMapOrdered[K cmp.Ordered, V any](dec *SnapshotDecoder, m map[K]V, key func(*SnapshotDecoder) K, val func(*SnapshotDecoder) V) error {
	return checkpoint.LoadMapOrdered(dec, m, key, val)
}

// DefaultStream is the stream name used by single-output operators.
const DefaultStream = tuple.DefaultStream

// Grouping selects how tuples are routed to a consumer's replicas.
type Grouping struct {
	part     graph.Partitioning
	keyField int
	stream   string
}

// Shuffle distributes tuples round-robin across replicas.
var Shuffle = Grouping{part: graph.Shuffle}

// Broadcast copies every tuple to all replicas.
var Broadcast = Grouping{part: graph.Broadcast}

// Global routes all tuples to a single replica.
var Global = Grouping{part: graph.Global}

// FieldsKey routes by hash of the given tuple field, pinning each key to
// one replica.
func FieldsKey(field int) Grouping { return Grouping{part: graph.Fields, keyField: field} }

// On narrows a grouping to a named output stream of the producer
// (default: DefaultStream).
func (g Grouping) On(stream string) Grouping {
	g.stream = stream
	return g
}

// Topology is a streaming application under construction.
type Topology struct {
	name      string
	g         *graph.Graph
	spouts    map[string]func() Spout
	operators map[string]func() Operator
	repl      map[string]int
	schemas   map[string]map[string]*Schema
	errs      []error
}

// NewTopology starts an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{
		name:      name,
		g:         graph.New(name),
		spouts:    map[string]func() Spout{},
		operators: map[string]func() Operator{},
		repl:      map[string]int{},
		schemas:   map[string]map[string]*Schema{},
	}
}

// Decl continues the declaration of one operator (for Subscribe and
// metadata calls).
type Decl struct {
	t    *Topology
	name string
}

// Spout declares a source operator. The builder is invoked once per
// replica so each replica owns its state.
func (t *Topology) Spout(name string, mk func() Spout) *Decl {
	if err := t.g.AddNode(&graph.Node{Name: name, IsSpout: true, Selectivity: map[string]float64{}}); err != nil {
		t.errs = append(t.errs, err)
	}
	t.spouts[name] = mk
	t.repl[name] = 1
	return &Decl{t: t, name: name}
}

// Operator declares a processing operator.
func (t *Topology) Operator(name string, mk func() Operator) *Decl {
	if err := t.g.AddNode(&graph.Node{Name: name, Selectivity: map[string]float64{}}); err != nil {
		t.errs = append(t.errs, err)
	}
	t.operators[name] = mk
	t.repl[name] = 1
	return &Decl{t: t, name: name}
}

// Sink declares a terminal operator: its received tuples count toward
// the application throughput.
func (t *Topology) Sink(name string, mk func() Operator) *Decl {
	if err := t.g.AddNode(&graph.Node{Name: name, IsSink: true, Selectivity: map[string]float64{}}); err != nil {
		t.errs = append(t.errs, err)
	}
	t.operators[name] = mk
	t.repl[name] = 1
	return &Decl{t: t, name: name}
}

// Subscribe connects this operator to a producer's output stream.
func (d *Decl) Subscribe(producer string, g Grouping) *Decl {
	stream := g.stream
	if stream == "" {
		stream = DefaultStream
	}
	// Selectivity defaults to 1 on any stream an edge uses; Selectivity
	// or profiling can override it later.
	if n := d.t.g.Node(producer); n != nil {
		if _, ok := n.Selectivity[stream]; !ok {
			n.Selectivity[stream] = 1
		}
	}
	err := d.t.g.AddEdge(graph.Edge{
		From: producer, To: d.name, Stream: stream,
		Partitioning: g.part, KeyField: g.keyField,
	})
	if err != nil {
		d.t.errs = append(d.t.errs, err)
	}
	return d
}

// Emits declares the schema of this operator's output on the given
// stream (DefaultStream for single-output operators): field names and
// kinds, fixed at wiring time. The engine validates the first tuple
// emitted on each declared route against it.
func (d *Decl) Emits(stream string, fields ...Field) *Decl {
	if stream == "" {
		stream = DefaultStream
	}
	if d.t.schemas[d.name] == nil {
		d.t.schemas[d.name] = map[string]*Schema{}
	}
	d.t.schemas[d.name][stream] = NewSchema(fields...)
	return d
}

// Parallelism sets the replica count used by Run when no optimized plan
// is supplied (Optimize chooses its own replication).
func (d *Decl) Parallelism(n int) *Decl {
	if n < 1 {
		d.t.errs = append(d.t.errs, fmt.Errorf("briskstream: parallelism %d for %q", n, d.name))
		return d
	}
	d.t.repl[d.name] = n
	return d
}

// Selectivity declares the average output tuples emitted on stream per
// input tuple, used by the optimizer's performance model.
func (d *Decl) Selectivity(stream string, s float64) *Decl {
	if n := d.t.g.Node(d.name); n != nil {
		n.Selectivity[stream] = s
	}
	return d
}

// Validate checks the topology structure.
func (t *Topology) Validate() error {
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return t.g.Validate()
}

// RunConfig tunes a real-engine execution.
type RunConfig struct {
	// Duration bounds the run; 0 runs until every spout returns io.EOF.
	Duration time.Duration
	// BatchSize overrides the jumbo-tuple size (default 64).
	BatchSize int
	// QueueCapacity overrides the per-task queue length (default 64).
	QueueCapacity int
	// Replication overrides the per-operator replica counts (e.g. from
	// an optimized Plan).
	Replication map[string]int
	// Linger overrides the partial-batch flush timeout (low-rate
	// streams see at most this much batching delay). Negative disables
	// the flush; 0 keeps the engine default.
	Linger time.Duration
	// CheckpointInterval enables periodic aligned checkpoints. The
	// Checkpoint coordinator is required with it — recovery needs a
	// handle the caller keeps across runs.
	CheckpointInterval time.Duration
	// Checkpoint supplies the coordinator that tracks and persists this
	// run's checkpoints. Share one coordinator between the original run
	// and a Resume run to recover across Run calls.
	Checkpoint *CheckpointCoordinator
	// Resume restores every task from the coordinator's latest
	// completed checkpoint — and replays sources from their recorded
	// offsets — before processing begins. Requires Checkpoint.
	Resume bool
	// AlignTimeout bounds how long a barrier alignment may park input
	// from already-aligned edges while slower edges catch up: past it,
	// the task abandons that checkpoint attempt and replays the parked
	// batches, so pathological skew cannot park unbounded memory. Zero
	// disables the bound. Abandoning never drops data — only the
	// checkpoint attempt.
	AlignTimeout time.Duration
	// Adaptive enables the autoscaler: the run is planned by RLAS,
	// profiled live, and elastically rescaled online when the advisor
	// predicts a sufficiently better plan (see AdaptiveConfig).
	// Replication is then chosen by the optimizer, not this config.
	Adaptive *AdaptiveConfig
	// Obs enables live telemetry: rolling-window metrics over the
	// engine's counters and, with Obs.Addr set, an HTTP server exposing
	// /metrics (Prometheus text), /statusz, /events, /healthz and
	// /debug/pprof/.
	Obs *ObsConfig
	// OnEvent observes every lifecycle journal event (run start/stop,
	// checkpoints, rescales) synchronously as it is emitted. Setting it
	// without Obs still activates the journal.
	OnEvent func(ObsEvent)
}

// RunResult reports a real-engine execution.
type RunResult struct {
	// Duration is the measured wall time.
	Duration time.Duration
	// SinkTuples counts tuples received by sinks.
	SinkTuples uint64
	// Throughput is SinkTuples/Duration (tuples/sec).
	Throughput float64
	// LatencyP50, LatencyP99 are sampled end-to-end latencies (ms).
	LatencyP50, LatencyP99 float64
	// Processed counts processed tuples per operator.
	Processed map[string]uint64
	// AlignTimeouts counts checkpoint alignment attempts abandoned by
	// RunConfig.AlignTimeout (dropped checkpoint attempts, never data).
	AlignTimeouts uint64
	// Rescales counts online rollovers performed by the autoscaler
	// (always 0 without RunConfig.Adaptive).
	Rescales int
	// RescaleOutcomes audits each rescale the autoscaler performed:
	// the gain the model predicted against the gain actually measured
	// once the rescaled engine settled (empty without Adaptive).
	RescaleOutcomes []RescaleOutcome
	// Errors aggregates operator failures.
	Errors []error
}

// RescaleOutcome compares one online rescale's predicted relative
// throughput gain with the gain measured after the rollover.
type RescaleOutcome struct {
	// At is when the realized gain was measured.
	At time.Time
	// PredictedGain is the model's promised relative improvement
	// (NewPredicted/CurrentPredicted − 1) at decision time.
	PredictedGain float64
	// RealizedGain is the measured relative throughput change across
	// the rollover; negative means the rescale hurt.
	RealizedGain float64
}

// Run executes the topology on the in-process engine.
func (t *Topology) Run(cfg RunConfig) (*RunResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Adaptive != nil {
		return t.runAdaptive(cfg)
	}
	ecfg := engine.DefaultConfig()
	if cfg.BatchSize > 0 {
		ecfg.BatchSize = cfg.BatchSize
	}
	if cfg.QueueCapacity > 0 {
		ecfg.QueueCapacity = cfg.QueueCapacity
	}
	if cfg.Linger != 0 {
		ecfg.Linger = max(cfg.Linger, 0)
	}
	if cfg.Resume && cfg.Checkpoint == nil {
		return nil, fmt.Errorf("briskstream: Resume requires a Checkpoint coordinator")
	}
	if cfg.CheckpointInterval > 0 && cfg.Checkpoint == nil {
		// A hidden throwaway coordinator would make every checkpoint pure
		// overhead: the caller could never Restore from it.
		return nil, fmt.Errorf("briskstream: CheckpointInterval requires a Checkpoint coordinator (keep it to Resume after a failure)")
	}
	ecfg.Checkpoint = cfg.Checkpoint
	ecfg.CheckpointInterval = cfg.CheckpointInterval
	ecfg.AlignTimeout = cfg.AlignTimeout
	applyObsEngineConfig(&ecfg, cfg)
	repl := t.repl
	if cfg.Replication != nil {
		repl = cfg.Replication
	}
	e, err := engine.New(engine.Topology{
		App:         t.g,
		Spouts:      t.spouts,
		Operators:   t.operators,
		Replication: repl,
		Schemas:     t.schemas,
	}, ecfg)
	if err != nil {
		return nil, err
	}
	sess, err := startObs(cfg)
	if err != nil {
		return nil, err
	}
	defer sess.close()
	sess.bindEngine(e)
	if cfg.Resume {
		if _, err := e.Restore(); err != nil {
			return nil, err
		}
	}
	res, err := e.Run(cfg.Duration)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Duration:      res.Duration,
		SinkTuples:    res.SinkTuples,
		Throughput:    res.Throughput,
		LatencyP50:    res.Latency.Quantile(0.5) / 1e6,
		LatencyP99:    res.Latency.Quantile(0.99) / 1e6,
		Processed:     res.Processed,
		AlignTimeouts: res.AlignTimeouts,
		Errors:        res.Errors,
	}, nil
}

// Graph exposes the underlying logical DAG (read-only use).
func (t *Topology) Graph() *graph.Graph { return t.g }

// Builders exposes the operator constructors for engine-level embedding.
func (t *Topology) Builders() (map[string]func() Spout, map[string]func() Operator) {
	return t.spouts, t.operators
}
