package main

// -live closes the loop the optimizer otherwise only predicts: the
// optimized plan is translated into an engine configuration
// (plan.Apply), executed on the real engine with live profiling on, and
// the observed statistics are fed back through the adaptive advisor,
// which reports how far the calibrated baseline drifted from this
// machine's measured behaviour and whether re-optimization would pay.

import (
	"fmt"
	"sort"
	"time"

	"briskstream/internal/adaptive"
	"briskstream/internal/apps"
	"briskstream/internal/engine"
	"briskstream/internal/numa"
	"briskstream/internal/plan"
	"briskstream/internal/rlas"
)

func runLive(a *apps.App, m *numa.Machine, r *rlas.Result, d time.Duration) error {
	ec, err := plan.Apply(r.Graph, r.Placement)
	if err != nil {
		return err
	}
	fmt.Println("\nengine config (plan.Apply):")
	var labels []string
	for label := range ec.Placement {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Printf("  %-22s socket %d\n", label, ec.Placement[label])
	}

	// Execute the placement on the machine actually under us: fold the
	// model's sockets onto the detected host topology and let the engine
	// pin each task thread to its socket (where the OS supports it).
	host := numa.DetectHost()
	if n := len(host.Sockets); n < m.Sockets {
		ec.FoldOnto(n)
		fmt.Printf("  (placement folded onto the %d-socket host)\n", n)
	}

	cfg := engine.DefaultConfig()
	cfg.ProfileSampleEvery = 64
	cfg.Placement = ec.Placement
	cfg.Host = host
	if numa.PinSupported() {
		fmt.Printf("pinning task threads to their sockets on %s\n", host)
	}
	e, err := engine.New(a.Topology(ec.Replication), cfg)
	if err != nil {
		return err
	}
	adv, err := adaptive.New(a.Graph, a.Stats, r, adaptive.Config{Machine: m})
	if err != nil {
		return err
	}

	fmt.Printf("\nrunning live for %v (profile sampling every %d tuples)...\n", d, cfg.ProfileSampleEvery)
	done := make(chan *engine.Result, 1)
	go func() {
		res, _ := e.Run(d)
		done <- res
	}()
	tick := time.NewTicker(d / 4)
	defer tick.Stop()
	var res *engine.Result
	for res == nil {
		select {
		case res = <-done:
		case <-tick.C:
			if err := adv.RecordEngine(e.ProfileSnapshot()); err != nil {
				return err
			}
		}
	}
	if len(res.Errors) != 0 {
		return res.Errors[0]
	}
	fmt.Printf("measured: %.1f K in-tuples/s over %v\n", ingestRate(a, res)/1000, res.Duration.Round(time.Millisecond))

	observed, err := adv.ObservedStats()
	if err != nil {
		return err
	}
	fmt.Println("\nlive-profiled statistics (observed vs. calibrated baseline):")
	var ops []string
	for op := range observed {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st, base := observed[op], a.Stats[op]
		fmt.Printf("  %-12s Te %8.1f ns (base %8.1f)   selectivity %6.2f (base %6.2f)\n",
			op, st.Te, base.Te, st.TotalSelectivity(), base.TotalSelectivity())
	}

	rec, err := adv.Evaluate()
	if err != nil {
		return err
	}
	fmt.Printf("\nadvisor: drifted=%v  current plan predicts %.1f K/s under observed stats",
		rec.DriftedOperators, rec.CurrentPredicted/1000)
	if rec.Reoptimize {
		fmt.Printf("\n  -> re-optimize: fresh plan predicts %.1f K/s (replication %v)\n",
			rec.NewPredicted/1000, rec.Plan.Replication)
	} else {
		fmt.Println("\n  -> keep the current plan")
	}
	return nil
}

// ingestRate sums the spout processing rate of one run.
func ingestRate(a *apps.App, res *engine.Result) float64 {
	var ingested uint64
	for _, n := range a.Graph.Spouts() {
		ingested += res.Processed[n.Name]
	}
	if s := res.Duration.Seconds(); s > 0 {
		return float64(ingested) / s
	}
	return 0
}
