package main

// -live closes the loop the optimizer otherwise only predicts: the
// optimized plan is translated into an engine configuration
// (plan.Apply), executed on the real engine with live profiling on, and
// the observed statistics are fed back through the adaptive advisor,
// which reports how far the calibrated baseline drifted from this
// machine's measured behaviour and whether re-optimization would pay.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"briskstream/internal/adaptive"
	"briskstream/internal/apps"
	"briskstream/internal/engine"
	"briskstream/internal/numa"
	"briskstream/internal/obs"
	"briskstream/internal/plan"
	"briskstream/internal/rlas"
)

// liveDrift publishes the advisor's observed-vs-baseline statistics to
// metric gauges: the supervise tick writes, scrapes read.
type liveDrift struct {
	mu  sync.Mutex
	te  map[string]float64 // observed per-tuple execution ns
	sel map[string]float64 // observed total selectivity
}

func (ld *liveDrift) update(op string, te, sel float64) {
	ld.mu.Lock()
	ld.te[op], ld.sel[op] = te, sel
	ld.mu.Unlock()
}

func (ld *liveDrift) get(m map[string]float64, op string) float64 {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return m[op]
}

func runLive(a *apps.App, m *numa.Machine, r *rlas.Result, d time.Duration, metricsAddr string) error {
	ec, err := plan.Apply(r.Graph, r.Placement)
	if err != nil {
		return err
	}
	fmt.Println("\nengine config (plan.Apply):")
	var labels []string
	for label := range ec.Placement {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Printf("  %-22s socket %d\n", label, ec.Placement[label])
	}

	// Execute the placement on the machine actually under us: fold the
	// model's sockets onto the detected host topology and let the engine
	// pin each task thread to its socket (where the OS supports it).
	host := numa.DetectHost()
	if n := len(host.Sockets); n < m.Sockets {
		ec.FoldOnto(n)
		fmt.Printf("  (placement folded onto the %d-socket host)\n", n)
	}

	cfg := engine.DefaultConfig()
	cfg.ProfileSampleEvery = 64
	cfg.TraceSampleEvery = 64
	cfg.Placement = ec.Placement
	cfg.Host = host
	if numa.PinSupported() {
		fmt.Printf("pinning task threads to their sockets on %s\n", host)
	}
	e, err := engine.New(a.Topology(ec.Replication), cfg)
	if err != nil {
		return err
	}
	// Tracing is always on for -live (every 64th tuple): the critical-path
	// breakdown at the end attributes the measured latency to queue wait,
	// operator service, and transfer per operator.
	tracer := obs.NewTracer()
	e.RegisterTrace(tracer)
	adv, err := adaptive.New(a.Graph, a.Stats, r, adaptive.Config{Machine: m})
	if err != nil {
		return err
	}

	// -metrics: serve the engine's series plus rlas drift gauges — the
	// live observed statistics against the calibrated baselines the plan
	// was optimized with — so drift is watchable while the run profiles.
	var drift *liveDrift
	if metricsAddr != "" {
		reg := obs.NewRegistry(0)
		jr := obs.NewJournal(0)
		e.RegisterObs(reg.Group("engine"), jr)
		drift = &liveDrift{te: map[string]float64{}, sel: map[string]float64{}}
		g := reg.Group("rlas")
		for op, base := range a.Stats {
			l := []obs.L{{Key: "op", Value: op}}
			base := base
			g.Gauge("rlas_te_observed_ns", "Live-profiled per-tuple execution time.", l, func() float64 {
				return drift.get(drift.te, op)
			})
			g.Gauge("rlas_te_baseline_ns", "Calibrated per-tuple execution time the plan assumed.", l, func() float64 {
				return base.Te
			})
			g.Gauge("rlas_selectivity_observed", "Live-profiled total selectivity.", l, func() float64 {
				return drift.get(drift.sel, op)
			})
			g.Gauge("rlas_selectivity_baseline", "Calibrated total selectivity the plan assumed.", l, func() float64 {
				return base.TotalSelectivity()
			})
		}
		srv, err := obs.Serve(metricsAddr, reg, jr, tracer)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics (traces at /traces)\n", srv.Addr())
	}

	fmt.Printf("\nrunning live for %v (profile sampling every %d tuples)...\n", d, cfg.ProfileSampleEvery)
	done := make(chan *engine.Result, 1)
	go func() {
		res, _ := e.Run(d)
		done <- res
	}()
	tick := time.NewTicker(d / 4)
	defer tick.Stop()
	var res *engine.Result
	for res == nil {
		select {
		case res = <-done:
		case <-tick.C:
			if err := adv.RecordEngine(e.ProfileSnapshot()); err != nil {
				return err
			}
			if drift != nil {
				if observed, err := adv.ObservedStats(); err == nil {
					for op, st := range observed {
						drift.update(op, st.Te, st.TotalSelectivity())
					}
				}
			}
		}
	}
	if len(res.Errors) != 0 {
		return res.Errors[0]
	}
	fmt.Printf("measured: %.1f K in-tuples/s over %v\n", ingestRate(a, res)/1000, res.Duration.Round(time.Millisecond))

	observed, err := adv.ObservedStats()
	if err != nil {
		return err
	}
	fmt.Println("\nlive-profiled statistics (observed vs. calibrated baseline):")
	var ops []string
	for op := range observed {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st, base := observed[op], a.Stats[op]
		fmt.Printf("  %-12s Te %8.1f ns (base %8.1f)   selectivity %6.2f (base %6.2f)\n",
			op, st.Te, base.Te, st.TotalSelectivity(), base.TotalSelectivity())
	}

	printBottlenecks(tracer)

	rec, err := adv.Evaluate()
	if err != nil {
		return err
	}
	fmt.Printf("\nadvisor: drifted=%v  current plan predicts %.1f K/s under observed stats",
		rec.DriftedOperators, rec.CurrentPredicted/1000)
	if rec.Reoptimize {
		fmt.Printf("\n  -> re-optimize: fresh plan predicts %.1f K/s (replication %v)\n",
			rec.NewPredicted/1000, rec.Plan.Replication)
	} else {
		fmt.Println("\n  -> keep the current plan")
	}
	return nil
}

// printBottlenecks renders the tracer's critical-path analysis: per
// operator, how much of the traced tuples' end-to-end latency was spent
// waiting in queues, in the operator itself, and in transfer.
func printBottlenecks(tr *obs.Tracer) {
	an := tr.Analyze()
	if an.Traces == 0 {
		return
	}
	fmt.Printf("\ncritical path (%d traced tuples, mean e2e %.2f ms):\n",
		an.Traces, float64(an.MeanE2eNs)/1e6)
	fmt.Printf("  %-12s %10s %10s %10s %7s\n", "op", "queue µs", "service µs", "transfer µs", "share")
	for _, op := range an.Ops {
		fmt.Printf("  %-12s %10.1f %10.1f %10.1f %6.1f%%\n",
			op.Op, float64(op.QueueNs)/1e3, float64(op.ServiceNs)/1e3,
			float64(op.TransferNs)/1e3, op.Share*100)
	}
}

// ingestRate sums the spout processing rate of one run.
func ingestRate(a *apps.App, res *engine.Result) float64 {
	var ingested uint64
	for _, n := range a.Graph.Spouts() {
		ingested += res.Processed[n.Name]
	}
	if s := res.Duration.Seconds(); s > 0 {
		return float64(ingested) / s
	}
	return 0
}
