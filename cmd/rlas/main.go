// Command rlas optimizes a benchmark application for a target machine
// and prints the resulting execution plan: replication levels, socket
// placement, predicted throughput and the bottleneck trace.
//
//	rlas -app WC
//	rlas -app LR -machine B -sockets 4 -ratio 1
//
// The default target is the machine under us: the NUMA topology probed
// from sysfs (numa.DetectHost), turned into a calibrated model. The
// paper's Table 2 servers remain available as -machine A (KunLun) and
// -machine B (DL980).
//
// -live closes the loop on the real engine: the plan is translated to
// an engine configuration (replication + placement labels), run with
// live profiling for the given duration, and the observed statistics
// are fed back through the adaptive advisor, which prints the drift
// against the calibrated baseline and its re-optimization verdict:
//
//	rlas -app WC -machine A -live 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/bnb"
	"briskstream/internal/model"
	"briskstream/internal/numa"
	"briskstream/internal/rlas"
	"briskstream/internal/sim"
)

func main() {
	var (
		appName = flag.String("app", "WC", "application: WC, FD, SD or LR")
		machine = flag.String("machine", "host", "target machine: host (detected topology), A (KunLun) or B (DL980)")
		sockets = flag.Int("sockets", 8, "number of sockets to enable (1-8)")
		ratio   = flag.Int("ratio", 5, "execution-graph compress ratio r")
		nodes   = flag.Int("nodes", 1500, "branch-and-bound node limit per round")
		iters   = flag.Int("iters", 40, "max scaling iterations")
		trace   = flag.Bool("trace", false, "print the per-iteration scaling trace")
		live    = flag.Duration("live", 0, "run the plan on the real engine for this duration, live-profile it, and print the advisor's drift/re-optimization verdict")
		metrics = flag.String("metrics", "", "with -live: serve /metrics with engine series plus observed-vs-baseline drift gauges on this address")
	)
	flag.Parse()

	a := apps.ByName(*appName)
	if a == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q (use WC, FD, SD or LR)\n", *appName)
		os.Exit(2)
	}
	var m *numa.Machine
	switch *machine {
	case "host", "HOST":
		m = numa.DetectHost().Machine()
	case "A", "a":
		m = numa.ServerA()
	case "B", "b":
		m = numa.ServerB()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q (use host, A or B)\n", *machine)
		os.Exit(2)
	}
	if *sockets < m.Sockets {
		var err error
		if m, err = m.Restrict(*sockets); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Printf("optimizing %s for %s (compress r=%d)\n\n", a.Name, m, *ratio)
	seed, err := rlas.SeedReplication(a.Graph, a.Stats, m.TotalCores(), 0.7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r, err := rlas.Optimize(a.Graph, rlas.Config{
		Model:         &model.Config{Machine: m, Stats: a.Stats, Ingress: model.Saturated},
		Compress:      *ratio,
		BnB:           bnb.Config{NodeLimit: *nodes},
		Initial:       seed,
		MaxIterations: *iters,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("predicted throughput: %.1f K events/s\n", r.Eval.Throughput/1000)
	fmt.Printf("optimization: %d iterations in %v\n\n", r.Iterations, r.Elapsed.Round(time.Millisecond))

	fmt.Println("replication:")
	var ops []string
	for op := range r.Replication {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("  %-18s x%d\n", op, r.Replication[op])
	}
	fmt.Println("\nplacement:")
	fmt.Print(r.Placement.String(r.Graph))

	sr, err := sim.Run(r.Graph, r.Placement, &sim.Config{
		Machine: m, Stats: a.Stats, Ingress: model.Saturated,
	})
	if err == nil {
		fmt.Printf("\nsimulated steady state: %.1f K events/s (relative error %.2f)\n",
			sr.Throughput/1000, model.RelativeError(sr.Throughput, r.Eval.Throughput))
	}

	if *trace {
		fmt.Println("\nscaling trace:")
		for i, tr := range r.Trace {
			fmt.Printf("  iter %2d: %8.1f K/s  grew %-16s %v\n",
				i, tr.Throughput/1000, tr.Bottleneck, tr.Replication)
		}
	}

	if *live > 0 {
		if err := runLive(a, m, r, *live, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
