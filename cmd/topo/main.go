// Command topo prints the benchmark application topologies: operators,
// streams with partitioning and selectivity, and the canned operator
// statistics (Te / M / N) that instantiate the performance model.
//
//	topo           # all four applications
//	topo -app LR   # one application
package main

import (
	"flag"
	"fmt"
	"os"

	"briskstream/internal/apps"
)

func describe(a *apps.App) {
	fmt.Printf("== %s (%d operators) ==\n", a.Name, a.Graph.Len())
	order, err := a.Graph.TopoSort()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, op := range order {
		n := a.Graph.Node(op)
		role := "operator"
		if n.IsSpout {
			role = "spout"
		} else if n.IsSink {
			role = "sink"
		}
		st := a.Stats[op]
		fmt.Printf("%-16s %-8s Te=%6.0fns  N=%4.0fB  M=%4.0fB/tuple\n", op, role, st.Te, st.N, st.M)
		for _, e := range a.Graph.Out(op) {
			fmt.Printf("    --[%s, %s, sel=%.3f]--> %s\n",
				e.Stream, e.Partitioning, st.Selectivity[e.Stream], e.To)
		}
	}
	fmt.Println()
}

func main() {
	appName := flag.String("app", "", "application to describe (WC, FD, SD, LR); empty = all")
	flag.Parse()

	if *appName != "" {
		a := apps.ByName(*appName)
		if a == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
			os.Exit(2)
		}
		describe(a)
		return
	}
	for _, a := range apps.All() {
		describe(a)
	}
}
