// Command profile measures the real Go operator implementations of a
// benchmark application in isolation — the paper's model-instantiation
// step (Section 3.1): each operator runs alone on sample input prepared
// by pre-executing its upstream operators, and its per-tuple execution
// time, input size and selectivity are reduced to model statistics at a
// chosen percentile.
//
//	profile -app WC -samples 5000 -pct 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/engine"
	"briskstream/internal/metrics"
	"briskstream/internal/profile"
	"briskstream/internal/tuple"
	"briskstream/internal/window"
)

// capture buffers emissions during isolated invocations.
type capture struct{ buf []*tuple.Tuple }

func (c *capture) Emit(values ...tuple.Value) { c.EmitTo(tuple.DefaultStream, values...) }
func (c *capture) EmitTo(stream string, values ...tuple.Value) {
	c.buf = append(c.buf, tuple.OnStream(stream, values...))
}
func (c *capture) Borrow() *tuple.Tuple  { return tuple.New() }
func (c *capture) Send(t *tuple.Tuple)   { c.buf = append(c.buf, t) }
func (c *capture) EmitWatermark(w int64) {} // isolated profiling has no downstream
func (c *capture) take() []*tuple.Tuple {
	out := c.buf
	c.buf = nil
	return out
}

func main() {
	var (
		appName = flag.String("app", "WC", "application to profile: WC, FD, SD or LR")
		samples = flag.Int("samples", 5000, "sample invocations per operator")
		pct     = flag.Float64("pct", 0.5, "percentile of the execution-time distribution to report")
	)
	flag.Parse()

	a := apps.ByName(*appName)
	if a == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}

	// Sample inputs per operator, produced by pre-executing upstream
	// operators in topological order (spouts feed the first stage).
	order, err := a.Graph.TopoSort()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	inputs := map[string][]*tuple.Tuple{}
	cap1 := &capture{}
	for _, op := range order {
		n := a.Graph.Node(op)
		var produced []*tuple.Tuple
		if n.IsSpout {
			sp := a.Spouts[op]()
			for len(produced) < *samples {
				if err := sp.Next(cap1); err != nil {
					break
				}
				produced = append(produced, cap1.take()...)
			}
		} else {
			impl := a.Operators[op]()
			for _, in := range inputs[op] {
				if err := impl.Process(cap1, in); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", op, err)
					os.Exit(1)
				}
				produced = append(produced, cap1.take()...)
				if len(produced) >= *samples {
					break
				}
			}
			// Window operators emit on window close, not per tuple:
			// drain open windows so downstream operators get inputs.
			if f, ok := impl.(window.Flusher); ok && len(produced) < *samples {
				if err := f.FlushOpen(cap1); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", op, err)
					os.Exit(1)
				}
				produced = append(produced, cap1.take()...)
			}
		}
		if len(produced) > *samples {
			produced = produced[:*samples]
		}
		// Feed produced tuples to each consumer's input pool, honoring
		// the stream subscription.
		for _, e := range a.Graph.Out(op) {
			sid := tuple.Intern(e.Stream)
			for _, t := range produced {
				if t.Stream == sid {
					inputs[e.To] = append(inputs[e.To], t)
				}
			}
		}
	}

	fmt.Printf("profiling %s: %d samples per operator, p%.0f statistics\n\n", a.Name, *samples, *pct*100)
	rows := [][]string{}
	for _, op := range order {
		n := a.Graph.Node(op)
		var p profile.Profiler
		if n.IsSpout {
			sp := a.Spouts[op]()
			for i := 0; i < *samples; i++ {
				t0 := time.Now()
				if err := sp.Next(cap1); err != nil {
					break
				}
				p.Record(profile.Sample{Duration: time.Since(t0), OutCount: len(cap1.take())})
			}
		} else {
			var impl engine.Operator = a.Operators[op]()
			ins := inputs[op]
			if len(ins) == 0 {
				rows = append(rows, []string{op, "-", "-", "-", "(no sample input reached this operator)"})
				continue
			}
			for _, in := range ins {
				t0 := time.Now()
				if err := impl.Process(cap1, in); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", op, err)
					os.Exit(1)
				}
				p.Record(profile.Sample{
					Duration: time.Since(t0),
					InBytes:  in.Size(),
					OutCount: len(cap1.take()),
				})
			}
		}
		st, err := p.Reduce(*pct)
		if err != nil {
			rows = append(rows, []string{op, "-", "-", "-", err.Error()})
			continue
		}
		canned := a.Stats[op]
		rows = append(rows, []string{
			op,
			fmt.Sprintf("%.0f", st.Te),
			fmt.Sprintf("%.0f", st.N),
			fmt.Sprintf("%.2f", st.Selectivity["default"]),
			fmt.Sprintf("canned Te=%.0f (ServerA-calibrated)", canned.Te),
		})
	}
	fmt.Print(metrics.Table(
		[]string{"operator", "Te (ns, this host)", "N (bytes)", "selectivity", "notes"}, rows))
	fmt.Println("\nmeasured Te is host-specific; the packaged statistics are calibrated to the paper's Server A clock.")
}
