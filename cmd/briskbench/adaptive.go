package main

// The adaptive column of bench-json: a word-count stream whose sentence
// length (splitter selectivity) jumps 2 -> 10 a quarter of the way in,
// drained twice — once at the plan optimized for the pre-shift
// statistics held static for the whole run, once under the autoscaler
// (live profiling -> advisor -> barrier/re-shard/restore rollover). The
// comparable number is effective ingest: distinct stream tuples over
// wall time, with the autoscaled run paying its own migration and
// replay cost.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	briskstream "briskstream"
)

const (
	adaptiveBenchTuples = 300_000
	adaptiveBenchPivot  = 75_000
)

var adaptiveVocab = []string{
	"stream", "process", "socket", "memory", "tuple", "operator",
	"plan", "latency", "remote", "local", "numa", "core",
	"thread", "queue", "batch", "window",
}

// adaptiveSpout is the deterministic skew-shift source (pure function
// of its offset, hence replayable through a rescale).
type adaptiveSpout struct {
	limit, pivot int64
	off          int64
	buf          []byte
}

func (s *adaptiveSpout) Next(c briskstream.Collector) error {
	if s.off >= s.limit {
		return io.EOF
	}
	off := s.off
	s.off++
	words := 2
	if off >= s.pivot {
		words = 10
	}
	s.buf = s.buf[:0]
	for i := 0; i < words; i++ {
		if i > 0 {
			s.buf = append(s.buf, ' ')
		}
		s.buf = append(s.buf, adaptiveVocab[(off*7+int64(i)*13)%int64(len(adaptiveVocab))]...)
	}
	out := c.Borrow()
	out.AppendStrBytes(s.buf)
	out.Event = off + 1
	c.Send(out)
	if (off+1)%64 == 0 {
		c.EmitWatermark(off + 1)
	}
	return nil
}

func (s *adaptiveSpout) Offset() int64 { return s.off }

func (s *adaptiveSpout) SeekTo(off int64) error {
	if off < 0 || off > s.limit {
		return fmt.Errorf("adaptiveSpout: seek to %d", off)
	}
	s.off = off
	return nil
}

// adaptiveBenchTopology assembles the skew word-count on the public
// API: limit bounds the stream (the obs demo passes an effectively
// endless one and relies on RunConfig.Duration), pivot is where the
// sentence length jumps.
func adaptiveBenchTopology(limit, pivot int64) *briskstream.Topology {
	t := briskstream.NewTopology("adaptive-wc")
	t.Spout("src", func() briskstream.Spout {
		return &adaptiveSpout{limit: limit, pivot: pivot}
	}).Emits(briskstream.DefaultStream, briskstream.StrField("sentence"))
	t.Operator("split", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error {
			sentence := tp.Str(0)
			for i := 0; i < len(sentence); {
				for i < len(sentence) && sentence[i] == ' ' {
					i++
				}
				start := i
				for i < len(sentence) && sentence[i] != ' ' {
					i++
				}
				if i == start {
					continue
				}
				out := c.Borrow()
				out.AppendStr(sentence[start:i])
				c.Send(out)
			}
			return nil
		})
	}).Subscribe("src", briskstream.Shuffle).
		Selectivity(briskstream.DefaultStream, 2).
		Emits(briskstream.DefaultStream, briskstream.StrField("word"))
	t.Operator("count", func() briskstream.Operator {
		type cnt struct {
			n    int64
			sink uint64
		}
		return briskstream.NewWindow(briskstream.WindowOp[cnt]{
			KeyField: 0,
			Size:     512,
			Init:     func(a *cnt) { *a = cnt{} },
			Add: func(a *cnt, tp *briskstream.Tuple) {
				// Synthetic per-word cost so the counter is the genuine
				// bottleneck once the long sentences arrive.
				h := uint64(1469598103934665603)
				for i := 0; i < 96; i++ {
					h = (h ^ uint64(i)) * 1099511628211
				}
				a.sink ^= h
				a.n++
			},
			Emit: func(c briskstream.Collector, key briskstream.Key, w briskstream.WindowSpan, a *cnt) {
				out := c.Borrow()
				out.AppendKey(key)
				out.AppendInt(a.n)
				out.Event = w.End
				c.Send(out)
			},
			Save: func(enc *briskstream.SnapshotEncoder, a *cnt) { enc.Int64(a.n) },
			Load: func(dec *briskstream.SnapshotDecoder, a *cnt) error { a.n = dec.Int64(); return nil },
		})
	}).Subscribe("split", briskstream.FieldsKey(0)).
		Emits(briskstream.DefaultStream, briskstream.StrField("word"), briskstream.IntField("n"))
	t.Sink("sink", func() briskstream.Operator {
		return briskstream.OperatorFunc(func(c briskstream.Collector, tp *briskstream.Tuple) error { return nil })
	}).Subscribe("count", briskstream.Shuffle)
	return t
}

// adaptiveBenchStats are the pre-shift statistics both runs are planned
// with; the shift makes them stale, which is the point.
func adaptiveBenchStats() map[string]briskstream.OperatorStats {
	return map[string]briskstream.OperatorStats{
		"src":   {ExecNs: 450, MemoryBytes: 64, TupleBytes: 24},
		"split": {ExecNs: 400, MemoryBytes: 128, TupleBytes: 24},
		"count": {ExecNs: 150, MemoryBytes: 64, TupleBytes: 12},
		"sink":  {ExecNs: 100, MemoryBytes: 32, TupleBytes: 20, Selectivity: map[string]float64{}},
	}
}

// adaptiveBenchRow is the static-vs-autoscaled comparison in the
// bench-json report.
type adaptiveBenchRow struct {
	StreamTuples     int64   `json:"stream_tuples"`
	StaticInputTPS   float64 `json:"static_input_tps"`
	AdaptiveInputTPS float64 `json:"adaptive_input_tps"`
	Rescales         int     `json:"rescales"`
	GainPct          float64 `json:"gain_pct"`
}

// adaptiveBench measures the rate-shift scenario.
func adaptiveBench() (*adaptiveBenchRow, error) {
	machine := briskstream.SyntheticMachine("bench", 2, max(2, runtime.GOMAXPROCS(0)/2))
	stats := adaptiveBenchStats()

	// Static: the stale plan held for the whole run (spout/sink pinned
	// to 1, like the autoscaler's own pinning).
	static := adaptiveBenchTopology(adaptiveBenchTuples, adaptiveBenchPivot)
	p, err := static.Optimize(briskstream.OptimizeConfig{Machine: machine, Stats: stats, FixedSpouts: true})
	if err != nil {
		return nil, fmt.Errorf("adaptive bench optimize: %w", err)
	}
	repl := make(map[string]int, len(p.Replication))
	for op, n := range p.Replication {
		repl[op] = n
	}
	repl["src"], repl["sink"] = 1, 1
	resS, err := static.Run(briskstream.RunConfig{Replication: repl})
	if err != nil {
		return nil, fmt.Errorf("adaptive bench static run: %w", err)
	}
	if len(resS.Errors) != 0 {
		return nil, fmt.Errorf("adaptive bench static run: %v", resS.Errors[0])
	}

	// Autoscaled: same topology, same stale statistics, live loop on.
	auto := adaptiveBenchTopology(adaptiveBenchTuples, adaptiveBenchPivot)
	resA, err := auto.Run(briskstream.RunConfig{Adaptive: &briskstream.AdaptiveConfig{
		Machine:     machine,
		Stats:       stats,
		Interval:    50 * time.Millisecond,
		SampleEvery: 32,
		MaxRescales: 2,
	}})
	if err != nil {
		return nil, fmt.Errorf("adaptive bench autoscaled run: %w", err)
	}
	if len(resA.Errors) != 0 {
		return nil, fmt.Errorf("adaptive bench autoscaled run: %v", resA.Errors[0])
	}

	row := &adaptiveBenchRow{StreamTuples: adaptiveBenchTuples, Rescales: resA.Rescales}
	if s := resS.Duration.Seconds(); s > 0 {
		row.StaticInputTPS = float64(adaptiveBenchTuples) / s
	}
	if s := resA.Duration.Seconds(); s > 0 {
		row.AdaptiveInputTPS = float64(adaptiveBenchTuples) / s
	}
	if row.StaticInputTPS > 0 {
		row.GainPct = (row.AdaptiveInputTPS - row.StaticInputTPS) / row.StaticInputTPS * 100
	}
	fmt.Fprintf(os.Stderr, "adaptive: static %.0f in-tuples/s, autoscaled %.0f (%+.1f%%, %d rescales)\n",
		row.StaticInputTPS, row.AdaptiveInputTPS, row.GainPct, row.Rescales)
	return row, nil
}
