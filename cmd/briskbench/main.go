// Command briskbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 as a text report.
//
//	briskbench -list            # list experiment ids
//	briskbench -exp table4      # run one experiment
//	briskbench -all             # run the full suite (slow)
//	briskbench -all -quick      # reduced fidelity, minutes instead
//	briskbench -engine 3s       # real-engine hot-path microbenchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"briskstream/internal/engine"
	"briskstream/internal/experiments"
	"briskstream/internal/graph"
	"briskstream/internal/metrics"
	"briskstream/internal/tuple"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "", "run a single experiment by id")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced fidelity (faster, same shapes)")
		engineDur = flag.Duration("engine", 0, "run the real-engine queue/dispatch microbenchmark for this duration")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	if *engineDur > 0 {
		if err := engineMicrobench(*engineDur); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Quick = *quick

	ids := []string{}
	switch {
	case *exp != "":
		ids = append(ids, *exp)
	case *all:
		ids = experiments.IDs()
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// engineMicrobench runs a duration-bounded spout->double->sink pipeline
// on the real engine at several producer replication levels and prints
// throughput plus the queue-layer counters, making the SPSC rework's
// effect observable without `go test -bench`.
func engineMicrobench(d time.Duration) error {
	rows := [][]string{}
	for _, spouts := range []int{1, 2, 4} {
		g := graph.New("microbench")
		g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "double", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "sink", IsSink: true})
		g.AddEdge(graph.Edge{From: "spout", To: "double", Stream: "default"})
		g.AddEdge(graph.Edge{From: "double", To: "sink", Stream: "default"})
		if err := g.Validate(); err != nil {
			return err
		}
		topo := engine.Topology{
			App: g,
			Spouts: map[string]func() engine.Spout{"spout": func() engine.Spout {
				i := int64(0)
				return engine.SpoutFunc(func(c engine.Collector) error {
					i++
					c.Emit(i)
					return nil
				})
			}},
			Operators: map[string]func() engine.Operator{
				"double": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
						c.Emit(t.Values...)
						return nil
					})
				},
				"sink": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
				},
			},
			Replication: map[string]int{"spout": spouts},
		}
		e, err := engine.New(topo, engine.DefaultConfig())
		if err != nil {
			return err
		}
		// Poll the inbox atomics while the engine runs — the same live
		// sampling the metrics/adaptive layers do — and report the
		// insert rate over the second half of the run (past warm-up).
		type runOut struct {
			res *engine.Result
			err error
		}
		done := make(chan runOut, 1)
		go func() {
			res, err := e.Run(d)
			done <- runOut{res, err}
		}()
		time.Sleep(d / 2)
		puts0, _ := e.QueueStats()
		insertRate := metrics.NewSampleRate(puts0)
		out := <-done
		if out.err != nil {
			return out.err
		}
		res := out.res
		if len(res.Errors) != 0 {
			return res.Errors[0]
		}
		putsEnd, _ := e.QueueStats()
		perInsert := float64(0)
		if res.QueuePuts > 0 {
			perInsert = float64(res.Processed["double"]+res.SinkTuples) / float64(res.QueuePuts)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", spouts),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%d", res.QueuePuts),
			fmt.Sprintf("%.0f", insertRate.Rate(putsEnd)),
			fmt.Sprintf("%.1f", perInsert),
		})
	}
	fmt.Printf("engine queue/dispatch microbenchmark (%v per row)\n\n", d)
	fmt.Println(metrics.Table(
		[]string{"spouts", "tuples/s", "queue puts", "inserts/s", "tuples/insert"},
		rows,
	))
	return nil
}
