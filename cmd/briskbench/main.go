// Command briskbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 as a text report.
//
//	briskbench -list            # list experiment ids
//	briskbench -exp table4      # run one experiment
//	briskbench -all             # run the full suite (slow)
//	briskbench -all -quick      # reduced fidelity, minutes instead
//	briskbench -engine 3s       # real-engine hot-path microbenchmark
//	briskbench -bench-json 2s   # four apps on the real engine, JSON rows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/engine"
	"briskstream/internal/experiments"
	"briskstream/internal/graph"
	"briskstream/internal/metrics"
	"briskstream/internal/tuple"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "", "run a single experiment by id")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced fidelity (faster, same shapes)")
		engineDur = flag.Duration("engine", 0, "run the real-engine queue/dispatch microbenchmark for this duration")
		benchJSON = flag.Duration("bench-json", 0, "run the four benchmark apps on the real engine for this duration each and print JSON perf rows")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	if *engineDur > 0 {
		if err := engineMicrobench(*engineDur); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON > 0 {
		if err := appBenchJSON(*benchJSON, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Quick = *quick

	ids := []string{}
	switch {
	case *exp != "":
		ids = append(ids, *exp)
	case *all:
		ids = experiments.IDs()
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// engineMicrobench runs a duration-bounded spout->double->sink pipeline
// on the real engine at several producer replication levels and prints
// throughput plus the queue-layer counters, making the SPSC rework's
// effect observable without `go test -bench`.
func engineMicrobench(d time.Duration) error {
	rows := [][]string{}
	for _, spouts := range []int{1, 2, 4} {
		g := graph.New("microbench")
		g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "double", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "sink", IsSink: true})
		g.AddEdge(graph.Edge{From: "spout", To: "double", Stream: "default"})
		g.AddEdge(graph.Edge{From: "double", To: "sink", Stream: "default"})
		if err := g.Validate(); err != nil {
			return err
		}
		topo := engine.Topology{
			App: g,
			Spouts: map[string]func() engine.Spout{"spout": func() engine.Spout {
				i := int64(0)
				return engine.SpoutFunc(func(c engine.Collector) error {
					i++
					out := c.Borrow()
					out.Values = append(out.Values, i)
					c.Send(out)
					return nil
				})
			}},
			Operators: map[string]func() engine.Operator{
				"double": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
						out := c.Borrow()
						out.Values = append(out.Values, t.Values...)
						c.Send(out)
						return nil
					})
				},
				"sink": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
				},
			},
			Replication: map[string]int{"spout": spouts},
		}
		e, err := engine.New(topo, engine.DefaultConfig())
		if err != nil {
			return err
		}
		// Poll the inbox atomics while the engine runs — the same live
		// sampling the metrics/adaptive layers do — and report the
		// insert rate over the second half of the run (past warm-up).
		type runOut struct {
			res *engine.Result
			err error
		}
		done := make(chan runOut, 1)
		go func() {
			res, err := e.Run(d)
			done <- runOut{res, err}
		}()
		time.Sleep(d / 2)
		puts0, _ := e.QueueStats()
		insertRate := metrics.NewSampleRate(puts0)
		out := <-done
		if out.err != nil {
			return out.err
		}
		res := out.res
		if len(res.Errors) != 0 {
			return res.Errors[0]
		}
		putsEnd, _ := e.QueueStats()
		perInsert := float64(0)
		if res.QueuePuts > 0 {
			perInsert = float64(res.Processed["double"]+res.SinkTuples) / float64(res.QueuePuts)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", spouts),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%d", res.QueuePuts),
			fmt.Sprintf("%.0f", insertRate.Rate(putsEnd)),
			fmt.Sprintf("%.1f", perInsert),
		})
	}
	fmt.Printf("engine queue/dispatch microbenchmark (%v per row)\n\n", d)
	fmt.Println(metrics.Table(
		[]string{"spouts", "tuples/s", "queue puts", "inserts/s", "tuples/insert"},
		rows,
	))
	return nil
}

// appBenchRow is one (application, replication) measurement of the
// real-engine data path, serialized into the BENCH_PR*.json trajectory
// files the Makefile's bench-json target maintains.
type appBenchRow struct {
	App            string  `json:"app"`
	Replication    int     `json:"replication"`
	DurationSec    float64 `json:"duration_sec"`
	SinkTuples     uint64  `json:"sink_tuples"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	QueuePuts      uint64  `json:"queue_puts"`
}

type appBenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	PerRunDur  string        `json:"per_run_duration"`
	Rows       []appBenchRow `json:"rows"`
}

// appBenchJSON runs the four benchmark applications on the real engine
// at replication 1 and 4 and writes machine-readable throughput,
// latency and allocation rows, so the perf trajectory of the data path
// is tracked across PRs (`make bench-json`).
func appBenchJSON(d time.Duration, w *os.File) error {
	report := appBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PerRunDur:  d.String(),
	}
	for _, a := range apps.All() {
		for _, repl := range []int{1, 4} {
			replication := map[string]int{}
			for _, n := range a.Graph.Nodes() {
				replication[n.Name] = repl
			}
			e, err := engine.New(engine.Topology{
				App:         a.Graph,
				Spouts:      a.Spouts,
				Operators:   a.Operators,
				Replication: replication,
			}, engine.DefaultConfig())
			if err != nil {
				return fmt.Errorf("%s x%d: %w", a.Name, repl, err)
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			res, err := e.Run(d)
			if err != nil {
				return fmt.Errorf("%s x%d: %w", a.Name, repl, err)
			}
			runtime.ReadMemStats(&m1)
			if len(res.Errors) != 0 {
				return fmt.Errorf("%s x%d: %v", a.Name, repl, res.Errors[0])
			}
			var processed uint64
			for _, n := range res.Processed {
				processed += n
			}
			row := appBenchRow{
				App:           a.Name,
				Replication:   repl,
				DurationSec:   res.Duration.Seconds(),
				SinkTuples:    res.SinkTuples,
				ThroughputTPS: res.Throughput,
				LatencyP50Ms:  res.Latency.Quantile(0.5) / 1e6,
				LatencyP99Ms:  res.Latency.Quantile(0.99) / 1e6,
				QueuePuts:     res.QueuePuts,
			}
			if processed > 0 {
				row.AllocsPerTuple = float64(m1.Mallocs-m0.Mallocs) / float64(processed)
			}
			report.Rows = append(report.Rows, row)
			fmt.Fprintf(os.Stderr, "%-3s x%d: %12.0f tuples/s  %.3f allocs/tuple\n",
				a.Name, repl, row.ThroughputTPS, row.AllocsPerTuple)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
