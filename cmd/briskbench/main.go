// Command briskbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 as a text report.
//
//	briskbench -list            # list experiment ids
//	briskbench -exp table4      # run one experiment
//	briskbench -all             # run the full suite (slow)
//	briskbench -all -quick      # reduced fidelity, minutes instead
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"briskstream/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		exp   = flag.String("exp", "", "run a single experiment by id")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced fidelity (faster, same shapes)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Quick = *quick

	ids := []string{}
	switch {
	case *exp != "":
		ids = append(ids, *exp)
	case *all:
		ids = experiments.IDs()
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
