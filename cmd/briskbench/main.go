// Command briskbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 6 as a text report.
//
//	briskbench -list            # list experiment ids
//	briskbench -exp table4      # run one experiment
//	briskbench -all             # run the full suite (slow)
//	briskbench -all -quick      # reduced fidelity, minutes instead
//	briskbench -engine 3s       # real-engine hot-path microbenchmark
//	briskbench -bench-json 2s   # benchmark apps on the real engine, JSON rows
//	briskbench -run 10s -metrics :9090   # windowed demo app with live telemetry
//	briskbench -obs-check       # scrape+validate own /metrics, exit 0/1
//	briskbench -trace-check     # run traced, validate /traces invariants
//	briskbench -check-exposition f.txt   # validate a saved exposition file
//
// The real-engine modes accept -rate N (token-bucket cap on each app's
// total spout output, tuples/sec) and -linger D (partial jumbo batch
// flush timeout), which makes low-rate/linger and watermark-lag
// scenarios drivable from the CLI:
//
//	briskbench -bench-json 2s -rate 5000 -linger 2ms
//
// The columnar batch path is on by default (following BRISK_BATCH);
// -batch=false forces the scalar path on any real-engine mode, and
// bench-json additionally re-runs the repl-4 rows scalar for the
// columnar on/off ablation columns:
//
//	briskbench -bench-json 2s -batch=false
//
// Fault-tolerance modes:
//
//	briskbench -kill-after 1s -app WC            # kill/recover demo
//	briskbench -kill-after 1s -ckpt-dir /tmp/cp  # file-backed checkpoints
//
// -kill-after runs the app with aligned checkpoints (interval set by
// -checkpoint, default 200ms), kills the engine like a crash after the
// given duration, restores the latest completed checkpoint, seeks the
// sources back to their recorded offsets, and resumes. bench-json also
// measures checkpointing overhead: every row reports checkpoint-off and
// checkpoint-on ingest (1s interval) and the relative cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"briskstream/internal/apps"
	"briskstream/internal/checkpoint"
	"briskstream/internal/engine"
	"briskstream/internal/experiments"
	"briskstream/internal/graph"
	"briskstream/internal/metrics"
	"briskstream/internal/numa"
	"briskstream/internal/tuple"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		exp       = flag.String("exp", "", "run a single experiment by id")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced fidelity (faster, same shapes)")
		engineDur = flag.Duration("engine", 0, "run the real-engine queue/dispatch microbenchmark for this duration")
		benchJSON = flag.Duration("bench-json", 0, "run the benchmark apps on the real engine for this duration each and print JSON perf rows")
		pin       = flag.Bool("pin", false, "bench-json: add pinned-executor variants to the GOMAXPROCS x replication matrix (threads bound to their socket's CPUs; skipped where unsupported)")
		rate      = flag.Float64("rate", 0, "token-bucket cap on spout output (tuples/sec across an app's spout replicas); 0 = unthrottled")
		linger    = flag.Duration("linger", engine.DefaultConfig().Linger, "partial jumbo-batch flush timeout (0 disables)")
		batch     = flag.Bool("batch", engine.DefaultConfig().Columnar, "columnar batch path on real-engine runs (default follows BRISK_BATCH; -batch=false forces the scalar path)")
		killAfter = flag.Duration("kill-after", 0, "fault-tolerance demo: kill the engine after this duration, then restore from the latest checkpoint and resume")
		appName   = flag.String("app", "WC", "application for -kill-after (WC, FD, SD, LR, TW)")
		ckptEvery = flag.Duration("checkpoint", 200*time.Millisecond, "checkpoint interval for -kill-after")
		ckptDir   = flag.String("ckpt-dir", "", "persist checkpoints to this directory (default: in-memory)")
		runFor    = flag.Duration("run", 0, "run the windowed demo app for this duration (combine with -metrics)")
		metrics   = flag.String("metrics", ":9090", "telemetry listen address for -run (/metrics, /statusz, /events, /healthz, /debug/pprof/)")
		obsCheck  = flag.Bool("obs-check", false, "self-check: run the demo app on a loopback port, scrape and validate /metrics, exit nonzero on failure")
		traceChk  = flag.Bool("trace-check", false, "self-check: run the demo app with tracing on, fetch /traces, and validate the trace invariants, exit nonzero on failure")
		checkExpo = flag.String("check-exposition", "", "validate a Prometheus text-format file (- for stdin) and exit")
	)
	flag.Parse()

	if *checkExpo != "" {
		if err := checkExposition(*checkExpo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *obsCheck {
		if err := obsSelfCheck(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *traceChk {
		if err := traceSelfCheck(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *runFor > 0 {
		if err := runObsDemo(*runFor, *metrics, *ckptEvery); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *killAfter > 0 {
		if err := killRecoverDemo(*appName, *killAfter, *ckptEvery, *ckptDir, *batch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	if *engineDur > 0 {
		if err := engineMicrobench(*engineDur, *rate, *linger, *batch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON > 0 {
		if err := appBenchJSON(*benchJSON, *rate, *linger, *pin, *batch, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ctx := experiments.NewContext()
	ctx.Quick = *quick

	ids := []string{}
	switch {
	case *exp != "":
		ids = append(ids, *exp)
	case *all:
		ids = experiments.IDs()
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		r, err := experiments.Run(id, ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// tokenBucket throttles a set of spout replicas to a shared tuples/sec
// budget. Take is called from every replica's goroutine; the mutex is
// uncontended at the low rates the throttle exists for.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	return &tokenBucket{rate: rate, tokens: 1, last: time.Now()}
}

// take consumes one token if available; a dry bucket yields briefly so
// a throttled spout does not monopolize its core while waiting.
func (b *tokenBucket) take() bool {
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if burst := 1 + b.rate/100; b.tokens > burst {
		b.tokens = burst // burst bound: ~10ms of backlog
	}
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok {
		time.Sleep(50 * time.Microsecond)
	}
	return ok
}

// throttleSpouts wraps every spout builder of an app with one shared
// token bucket (the app-wide ingress rate), leaving the builders
// untouched when rate is 0.
func throttleSpouts(spouts map[string]func() engine.Spout, rate float64) map[string]func() engine.Spout {
	if rate <= 0 {
		return spouts
	}
	bucket := newTokenBucket(rate)
	out := make(map[string]func() engine.Spout, len(spouts))
	for name, mk := range spouts {
		mk := mk
		out[name] = func() engine.Spout {
			inner := mk()
			return engine.SpoutFunc(func(c engine.Collector) error {
				if !bucket.take() {
					return nil // no token: emit nothing this call
				}
				return inner.Next(c)
			})
		}
	}
	return out
}

// engineMicrobench runs a duration-bounded spout->double->sink pipeline
// on the real engine at several producer replication levels and prints
// throughput plus the queue-layer counters, making the SPSC rework's
// effect observable without `go test -bench`.
func engineMicrobench(d time.Duration, rate float64, linger time.Duration, batch bool) error {
	rows := [][]string{}
	for _, spouts := range []int{1, 2, 4} {
		g := graph.New("microbench")
		g.AddNode(&graph.Node{Name: "spout", IsSpout: true, Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "double", Selectivity: map[string]float64{"default": 1}})
		g.AddNode(&graph.Node{Name: "sink", IsSink: true})
		g.AddEdge(graph.Edge{From: "spout", To: "double", Stream: "default"})
		g.AddEdge(graph.Edge{From: "double", To: "sink", Stream: "default"})
		if err := g.Validate(); err != nil {
			return err
		}
		topo := engine.Topology{
			App: g,
			Spouts: throttleSpouts(map[string]func() engine.Spout{"spout": func() engine.Spout {
				i := int64(0)
				return engine.SpoutFunc(func(c engine.Collector) error {
					i++
					out := c.Borrow()
					out.AppendInt(i)
					c.Send(out)
					return nil
				})
			}}, rate),
			Operators: map[string]func() engine.Operator{
				"double": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error {
						out := c.Borrow()
						out.CopyValuesFrom(t)
						c.Send(out)
						return nil
					})
				},
				"sink": func() engine.Operator {
					return engine.OperatorFunc(func(c engine.Collector, t *tuple.Tuple) error { return nil })
				},
			},
			Replication: map[string]int{"spout": spouts},
		}
		cfg := engine.DefaultConfig()
		cfg.Linger = linger
		cfg.Columnar = batch
		e, err := engine.New(topo, cfg)
		if err != nil {
			return err
		}
		// Poll the inbox atomics while the engine runs — the same live
		// sampling the metrics/adaptive layers do — and report the
		// insert rate over the second half of the run (past warm-up).
		type runOut struct {
			res *engine.Result
			err error
		}
		done := make(chan runOut, 1)
		go func() {
			res, err := e.Run(d)
			done <- runOut{res, err}
		}()
		time.Sleep(d / 2)
		puts0, _ := e.QueueStats()
		insertRate := metrics.NewSampleRate(puts0)
		out := <-done
		if out.err != nil {
			return out.err
		}
		res := out.res
		if len(res.Errors) != 0 {
			return res.Errors[0]
		}
		putsEnd, _ := e.QueueStats()
		perInsert := float64(0)
		if res.QueuePuts > 0 {
			perInsert = float64(res.Processed["double"]+res.SinkTuples) / float64(res.QueuePuts)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", spouts),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%d", res.QueuePuts),
			fmt.Sprintf("%.0f", insertRate.Rate(putsEnd)),
			fmt.Sprintf("%.1f", perInsert),
		})
	}
	fmt.Printf("engine queue/dispatch microbenchmark (%v per row)\n\n", d)
	fmt.Println(metrics.Table(
		[]string{"spouts", "tuples/s", "queue puts", "inserts/s", "tuples/insert"},
		rows,
	))
	return nil
}

// killRecoverDemo is the CLI face of the recovery path: run an app with
// periodic aligned checkpoints, kill the engine mid-run the way a crash
// would, restore the latest completed checkpoint, seek the sources back
// and resume for another kill-after window.
func killRecoverDemo(appName string, killAfter, interval time.Duration, dir string, batch bool) error {
	a := apps.ByName(appName)
	if a == nil {
		return fmt.Errorf("unknown app %q", appName)
	}
	var store checkpoint.Store
	if dir != "" {
		fs, err := checkpoint.NewFileStore(dir)
		if err != nil {
			return err
		}
		store = fs
	}
	co := checkpoint.NewCoordinator(store)
	cfg := engine.DefaultConfig()
	cfg.Checkpoint = co
	cfg.CheckpointInterval = interval
	cfg.Columnar = batch
	e, err := engine.New(a.Topology(nil), cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s: running with %v checkpoints, killing after %v...\n", a.Name, interval, killAfter)
	done := make(chan *engine.Result, 1)
	go func() {
		res, _ := e.Run(0)
		done <- res
	}()
	time.Sleep(killAfter)
	e.Kill()
	res := <-done
	if len(res.Errors) != 0 {
		return res.Errors[0]
	}
	fmt.Printf("killed:    %d sink tuples, %d checkpoints completed\n", res.SinkTuples, co.Completed())

	id, err := e.Restore()
	if err != nil {
		return err
	}
	fmt.Printf("restored:  checkpoint %d (latest completed)\n", id)
	res2, err := e.Run(killAfter)
	if err != nil {
		return err
	}
	if len(res2.Errors) != 0 {
		return res2.Errors[0]
	}
	fmt.Printf("recovered: %d sink tuples in %v after replaying from the checkpoint offsets\n",
		res2.SinkTuples, res2.Duration.Round(time.Millisecond))
	return nil
}

// appBenchRow is one (application, replication) measurement of the
// real-engine data path, serialized into the BENCH_PR*.json trajectory
// files the Makefile's bench-json target maintains.
type appBenchRow struct {
	App         string `json:"app"`
	Replication int    `json:"replication"`
	// GOMAXPROCS and Pinned identify the row's point in the multicore
	// matrix: the scheduler parallelism the row ran under, and whether
	// task threads were bound to their socket's CPUs. Rows before PR 7
	// were all {gomaxprocs: 1, pinned: false}.
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Pinned      bool    `json:"pinned"`
	DurationSec float64 `json:"duration_sec"`
	SinkTuples  uint64  `json:"sink_tuples"`
	// ThroughputTPS is the sink-output rate; for windowed apps (WC, SD,
	// TW, and LR's stat path) sinks receive aggregates, so InputTPS —
	// the spout ingest rate — is the cross-PR comparable number.
	ThroughputTPS  float64 `json:"throughput_tps"`
	InputTPS       float64 `json:"input_tps"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	AllocsPerTuple float64 `json:"allocs_per_tuple"`
	QueuePuts      uint64  `json:"queue_puts"`
	// InputTPSCkpt is the ingest rate of the same configuration with
	// aligned checkpoints at a 1s interval; CkptOverheadPct is the
	// relative throughput cost ((off-on)/off, percent — the subsystem
	// targets <5%), and CkptCompleted counts the checkpoints that
	// completed during the measurement. Measured on the GOMAXPROCS=1
	// unpinned rows only (the cross-PR trajectory); zero elsewhere.
	InputTPSCkpt    float64 `json:"input_tps_ckpt"`
	CkptOverheadPct float64 `json:"ckpt_overhead_pct"`
	CkptCompleted   uint64  `json:"ckpt_completed"`
	// Columnar records whether the vectorized batch path was on for the
	// row. InputTPSScalar is the same configuration re-run with the
	// columnar path off (the on/off ablation; measured on the repl-4
	// unpinned rows, where batch effects are clearest under contention),
	// and ColumnarGainPct the relative ingest gain ((on-off)/off,
	// percent).
	Columnar        bool    `json:"columnar"`
	InputTPSScalar  float64 `json:"input_tps_scalar,omitempty"`
	ColumnarGainPct float64 `json:"columnar_gain_pct,omitempty"`
}

type appBenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	PerRunDur  string        `json:"per_run_duration"`
	Rows       []appBenchRow `json:"rows"`
	// Adaptive compares a static stale plan against the autoscaler on
	// the skew-shift word-count (see adaptive.go).
	Adaptive *adaptiveBenchRow `json:"adaptive,omitempty"`
}

// benchVariant is one point of the multicore matrix bench-json sweeps
// per application: scheduler parallelism x replication x pinning.
type benchVariant struct {
	gm     int
	repl   int
	pinned bool
}

// appBenchJSON runs the benchmark applications (the paper's four plus
// the windowed TW) on the real engine across a GOMAXPROCS x
// replication (x pinned, with -pin) matrix and writes machine-readable
// throughput, latency and allocation rows, so the perf trajectory of
// the data path — including the multicore replication scaling the
// paper is about — is tracked across PRs (`make bench-json`).
func appBenchJSON(d time.Duration, rate float64, linger time.Duration, pin, batch bool, w *os.File) error {
	report := appBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PerRunDur:  d.String(),
	}
	variants := []benchVariant{
		{gm: 1, repl: 1}, {gm: 1, repl: 4},
		{gm: 4, repl: 1}, {gm: 4, repl: 4},
	}
	if pin {
		if numa.PinSupported() {
			variants = append(variants, benchVariant{gm: 4, repl: 1, pinned: true}, benchVariant{gm: 4, repl: 4, pinned: true})
		} else {
			fmt.Fprintln(os.Stderr, "-pin: thread affinity unsupported on this platform, skipping pinned rows")
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, a := range apps.Benchmarks() {
		for _, v := range variants {
			runtime.GOMAXPROCS(v.gm)
			cfg := engine.DefaultConfig()
			cfg.Linger = linger
			cfg.Pin = v.pinned // overrides BRISK_PIN either way: the row label must be honest
			cfg.Columnar = batch
			replication := map[string]int{}
			for _, n := range a.Graph.Nodes() {
				replication[n.Name] = v.repl
			}
			topo := a.Topology(replication)
			topo.Spouts = throttleSpouts(a.Spouts, rate)
			e, err := engine.New(topo, cfg)
			if err != nil {
				return fmt.Errorf("%s x%d: %w", a.Name, v.repl, err)
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			res, err := e.Run(d)
			if err != nil {
				return fmt.Errorf("%s x%d: %w", a.Name, v.repl, err)
			}
			runtime.ReadMemStats(&m1)
			if len(res.Errors) != 0 {
				return fmt.Errorf("%s x%d: %v", a.Name, v.repl, res.Errors[0])
			}
			var processed, ingested uint64
			for _, n := range res.Processed {
				processed += n
			}
			for _, n := range a.Graph.Spouts() {
				ingested += res.Processed[n.Name]
			}
			row := appBenchRow{
				App:           a.Name,
				Columnar:      batch,
				Replication:   v.repl,
				GOMAXPROCS:    v.gm,
				Pinned:        v.pinned,
				DurationSec:   res.Duration.Seconds(),
				SinkTuples:    res.SinkTuples,
				ThroughputTPS: res.Throughput,
				LatencyP50Ms:  res.Latency.Quantile(0.5) / 1e6,
				LatencyP99Ms:  res.Latency.Quantile(0.99) / 1e6,
				QueuePuts:     res.QueuePuts,
			}
			if s := res.Duration.Seconds(); s > 0 {
				row.InputTPS = float64(ingested) / s
			}
			if processed > 0 {
				row.AllocsPerTuple = float64(m1.Mallocs-m0.Mallocs) / float64(processed)
			}

			// Same configuration with aligned checkpoints at a 1s
			// interval: the overhead column the subsystem is gated on.
			// Only on the single-core unpinned rows — the cross-PR
			// trajectory — so the matrix growth doesn't double the wall
			// time of every new row.
			if v.gm == 1 && !v.pinned {
				co := checkpoint.NewCoordinator(nil)
				ccfg := cfg
				ccfg.Checkpoint = co
				ccfg.CheckpointInterval = time.Second
				ctopo := a.Topology(replication)
				ctopo.Spouts = throttleSpouts(a.Spouts, rate)
				ec, err := engine.New(ctopo, ccfg)
				if err != nil {
					return fmt.Errorf("%s x%d ckpt: %w", a.Name, v.repl, err)
				}
				resC, err := ec.Run(d)
				if err != nil {
					return fmt.Errorf("%s x%d ckpt: %w", a.Name, v.repl, err)
				}
				if len(resC.Errors) != 0 {
					return fmt.Errorf("%s x%d ckpt: %v", a.Name, v.repl, resC.Errors[0])
				}
				var ingestedC uint64
				for _, n := range a.Graph.Spouts() {
					ingestedC += resC.Processed[n.Name]
				}
				if s := resC.Duration.Seconds(); s > 0 {
					row.InputTPSCkpt = float64(ingestedC) / s
				}
				row.CkptCompleted = co.Completed()
				if row.InputTPS > 0 {
					row.CkptOverheadPct = (row.InputTPS - row.InputTPSCkpt) / row.InputTPS * 100
				}
			}

			// Columnar on/off ablation: the same configuration re-run with
			// the batch path disabled, on the repl-4 unpinned rows. The
			// InputTPS delta is the end-to-end effect of columnar jumbo
			// batches + vectorized operators on each app's ingest rate.
			if batch && v.repl == 4 && !v.pinned {
				scfg := cfg
				scfg.Columnar = false
				stopo := a.Topology(replication)
				stopo.Spouts = throttleSpouts(a.Spouts, rate)
				es, err := engine.New(stopo, scfg)
				if err != nil {
					return fmt.Errorf("%s x%d scalar: %w", a.Name, v.repl, err)
				}
				resS, err := es.Run(d)
				if err != nil {
					return fmt.Errorf("%s x%d scalar: %w", a.Name, v.repl, err)
				}
				if len(resS.Errors) != 0 {
					return fmt.Errorf("%s x%d scalar: %v", a.Name, v.repl, resS.Errors[0])
				}
				var ingestedS uint64
				for _, n := range a.Graph.Spouts() {
					ingestedS += resS.Processed[n.Name]
				}
				if s := resS.Duration.Seconds(); s > 0 {
					row.InputTPSScalar = float64(ingestedS) / s
				}
				if row.InputTPSScalar > 0 {
					row.ColumnarGainPct = (row.InputTPS - row.InputTPSScalar) / row.InputTPSScalar * 100
				}
			}

			report.Rows = append(report.Rows, row)
			pinTag := ""
			if v.pinned {
				pinTag = " pinned"
			}
			fmt.Fprintf(os.Stderr, "%-3s x%d p%d%s: %12.0f in-tuples/s %10.0f out/s  %.3f allocs/tuple\n",
				a.Name, v.repl, v.gm, pinTag, row.InputTPS, row.ThroughputTPS, row.AllocsPerTuple)
		}
	}
	runtime.GOMAXPROCS(prev)
	ad, err := adaptiveBench()
	if err != nil {
		return err
	}
	report.Adaptive = ad

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
