package main

// Observability modes.
//
//	briskbench -run 10s -metrics :9090     # windowed demo app, live /metrics
//	briskbench -obs-check                  # scrape+validate own endpoints, exit 0/1
//	briskbench -check-exposition dump.txt  # validate a saved /metrics body
//
// -run drives the skew word-count (the adaptive bench topology with an
// unbounded source) for the given duration with checkpointing on, so
// every metric family — task counters, queue depths, watermark lag,
// checkpoint durations, rolling latency quantiles — carries live data.
// -obs-check is the CI smoke test: it binds to a free port, waits for
// real traffic, fetches /healthz, /metrics and /events, and validates
// the exposition with the same parser the unit tests use.

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	briskstream "briskstream"
	"briskstream/internal/obs"
)

// obsDemoLimit is effectively endless: the demo is bounded by -run's
// duration, not the source.
const obsDemoLimit = int64(1) << 62

// runObsDemo runs the windowed demo app for d with telemetry served on
// addr, printing where the endpoints live and a closing summary.
func runObsDemo(d time.Duration, addr string, ckptEvery time.Duration) error {
	if d <= 0 {
		d = 10 * time.Second
	}
	t := adaptiveBenchTopology(obsDemoLimit, obsDemoLimit/2)
	co := briskstream.NewCheckpointCoordinator(nil)
	cfg := briskstream.RunConfig{
		Duration:           d,
		Checkpoint:         co,
		CheckpointInterval: ckptEvery,
		Obs:                &briskstream.ObsConfig{Addr: addr},
		OnEvent: func(ev briskstream.ObsEvent) {
			if ev.Type == "obs_serving" {
				fmt.Printf("telemetry: http://%s/metrics /statusz /events /debug/pprof/\n", ev.Attrs["addr"])
			}
		},
	}
	res, err := t.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ran %v: %d sink tuples, %.0f tuples/s, p99 %.2fms\n",
		res.Duration.Round(time.Millisecond), res.SinkTuples, res.Throughput, res.LatencyP99)
	return nil
}

// obsSelfCheck runs the demo app on a loopback port, scrapes its own
// endpoints mid-run, and fails on any HTTP error, malformed exposition
// line, or missing core metric family. It is the CI gate for the
// /metrics surface.
func obsSelfCheck() error {
	t := adaptiveBenchTopology(obsDemoLimit, obsDemoLimit/2)
	co := briskstream.NewCheckpointCoordinator(nil)
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := t.Run(briskstream.RunConfig{
			Duration:           3 * time.Second,
			Checkpoint:         co,
			CheckpointInterval: 300 * time.Millisecond,
			Obs:                &briskstream.ObsConfig{Addr: "127.0.0.1:0"},
			OnEvent: func(ev briskstream.ObsEvent) {
				if ev.Type == "obs_serving" {
					addrCh <- ev.Attrs["addr"]
				}
			},
		})
		errCh <- err
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		return fmt.Errorf("obs-check: run ended before serving: %v", err)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("obs-check: telemetry server never came up")
	}

	// Let the pipeline move and at least one checkpoint complete before
	// judging the scrape.
	time.Sleep(1500 * time.Millisecond)

	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		return string(b), nil
	}

	if body, err := get("/healthz"); err != nil || !strings.Contains(body, "ok") {
		return fmt.Errorf("obs-check: /healthz failed: %v %q", err, body)
	}
	body, err := get("/metrics")
	if err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if err := obs.ValidateExposition([]byte(body)); err != nil {
		return fmt.Errorf("obs-check: malformed exposition: %v", err)
	}
	for _, want := range []string{
		"brisk_sink_tuples_total",
		"brisk_task_processed_total",
		"brisk_task_queue_depth",
		"brisk_latency_rolling_ns",
		"brisk_checkpoints_completed_total",
		"brisk_sym_count",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("obs-check: /metrics is missing family %s", want)
		}
	}
	events, err := get("/events")
	if err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if !strings.Contains(events, "run_start") {
		return fmt.Errorf("obs-check: /events has no run_start: %s", events)
	}
	if _, err := get("/statusz"); err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if err := <-errCh; err != nil {
		return fmt.Errorf("obs-check: run failed: %v", err)
	}
	fmt.Println("obs-check: ok")
	return nil
}

// checkExposition validates a Prometheus text-format file ("-" reads
// stdin); CI uses it to judge a curl'ed /metrics body.
func checkExposition(path string) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if err := obs.ValidateExposition(data); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Printf("%s: well-formed (%d bytes)\n", path, len(data))
	return nil
}
