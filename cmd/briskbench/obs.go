package main

// Observability modes.
//
//	briskbench -run 10s -metrics :9090     # windowed demo app, live /metrics
//	briskbench -obs-check                  # scrape+validate own endpoints, exit 0/1
//	briskbench -trace-check                # run traced, validate /traces invariants
//	briskbench -check-exposition dump.txt  # validate a saved /metrics body
//
// -run drives the skew word-count (the adaptive bench topology with an
// unbounded source) for the given duration with checkpointing on, so
// every metric family — task counters, queue depths, watermark lag,
// checkpoint durations, rolling latency quantiles — carries live data.
// -obs-check is the CI smoke test: it binds to a free port, waits for
// real traffic, fetches /healthz, /metrics and /events, and validates
// the exposition with the same parser the unit tests use. -trace-check
// does the same for the tracing surface: it runs with TraceEvery on,
// fetches /traces in both formats, and validates the trace invariants
// (hop times monotonic, spans on topology operators only, queue-wait +
// service bounded by elapsed time, breakdown summing to the mean
// end-to-end latency).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	briskstream "briskstream"
	"briskstream/internal/obs"
)

// obsDemoLimit is effectively endless: the demo is bounded by -run's
// duration, not the source.
const obsDemoLimit = int64(1) << 62

// runObsDemo runs the windowed demo app for d with telemetry served on
// addr, printing where the endpoints live and a closing summary.
func runObsDemo(d time.Duration, addr string, ckptEvery time.Duration) error {
	if d <= 0 {
		d = 10 * time.Second
	}
	t := adaptiveBenchTopology(obsDemoLimit, obsDemoLimit/2)
	co := briskstream.NewCheckpointCoordinator(nil)
	cfg := briskstream.RunConfig{
		Duration:           d,
		Checkpoint:         co,
		CheckpointInterval: ckptEvery,
		Obs:                &briskstream.ObsConfig{Addr: addr, TraceEvery: 64},
		OnEvent: func(ev briskstream.ObsEvent) {
			if ev.Type == "obs_serving" {
				fmt.Printf("telemetry: http://%s/metrics /statusz /events /traces /debug/pprof/\n", ev.Attrs["addr"])
			}
		},
	}
	res, err := t.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ran %v: %d sink tuples, %.0f tuples/s, p99 %.2fms\n",
		res.Duration.Round(time.Millisecond), res.SinkTuples, res.Throughput, res.LatencyP99)
	return nil
}

// obsSelfCheck runs the demo app on a loopback port, scrapes its own
// endpoints mid-run, and fails on any HTTP error, malformed exposition
// line, or missing core metric family. It is the CI gate for the
// /metrics surface.
func obsSelfCheck() error {
	t := adaptiveBenchTopology(obsDemoLimit, obsDemoLimit/2)
	co := briskstream.NewCheckpointCoordinator(nil)
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := t.Run(briskstream.RunConfig{
			Duration:           3 * time.Second,
			Checkpoint:         co,
			CheckpointInterval: 300 * time.Millisecond,
			Obs:                &briskstream.ObsConfig{Addr: "127.0.0.1:0"},
			OnEvent: func(ev briskstream.ObsEvent) {
				if ev.Type == "obs_serving" {
					addrCh <- ev.Attrs["addr"]
				}
			},
		})
		errCh <- err
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		return fmt.Errorf("obs-check: run ended before serving: %v", err)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("obs-check: telemetry server never came up")
	}

	// Let the pipeline move and at least one checkpoint complete before
	// judging the scrape.
	time.Sleep(1500 * time.Millisecond)

	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		return string(b), nil
	}

	if body, err := get("/healthz"); err != nil || !strings.Contains(body, "ok") {
		return fmt.Errorf("obs-check: /healthz failed: %v %q", err, body)
	}
	body, err := get("/metrics")
	if err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if err := obs.ValidateExposition([]byte(body)); err != nil {
		return fmt.Errorf("obs-check: malformed exposition: %v", err)
	}
	for _, want := range []string{
		"brisk_sink_tuples_total",
		"brisk_task_processed_total",
		"brisk_task_queue_depth",
		"brisk_latency_rolling_ns",
		"brisk_checkpoints_completed_total",
		"brisk_sym_count",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("obs-check: /metrics is missing family %s", want)
		}
	}
	events, err := get("/events")
	if err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if !strings.Contains(events, "run_start") {
		return fmt.Errorf("obs-check: /events has no run_start: %s", events)
	}
	if _, err := get("/statusz"); err != nil {
		return fmt.Errorf("obs-check: %v", err)
	}
	if err := <-errCh; err != nil {
		return fmt.Errorf("obs-check: run failed: %v", err)
	}
	fmt.Println("obs-check: ok")
	return nil
}

// traceDoc mirrors the /traces JSON document for validation.
type traceDoc struct {
	Traces []struct {
		ID       uint64 `json:"id"`
		OriginNs int64  `json:"origin_ns"`
		E2eNs    int64  `json:"e2e_ns"`
		Spans    []struct {
			Op          string `json:"op"`
			Kind        string `json:"kind"`
			AtNs        int64  `json:"at_ns"`
			QueueWaitNs int64  `json:"queue_wait_ns"`
			ServiceNs   int64  `json:"service_ns"`
		} `json:"spans"`
	} `json:"traces"`
	Analysis struct {
		Traces    int     `json:"traces"`
		MeanE2eNs float64 `json:"mean_e2e_ns"`
		Ops       []struct {
			Op         string  `json:"op"`
			QueueNs    float64 `json:"queue_ns"`
			ServiceNs  float64 `json:"service_ns"`
			TransferNs float64 `json:"transfer_ns"`
		} `json:"ops"`
	} `json:"analysis"`
}

// traceSelfCheck runs the demo app with tracing on, fetches /traces in
// both formats, and validates the invariants the tracing subsystem
// guarantees: every span sits on a topology operator, hop times ascend
// within a trace, per-hop queue-wait + service never exceeds the
// elapsed end-to-end time, and the analyzer's per-operator breakdown
// sums to the mean end-to-end latency within 10%. It is the CI gate
// for the /traces surface.
func traceSelfCheck() error {
	t := adaptiveBenchTopology(obsDemoLimit, obsDemoLimit/2)
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := t.Run(briskstream.RunConfig{
			Duration: 3 * time.Second,
			Obs:      &briskstream.ObsConfig{Addr: "127.0.0.1:0", TraceEvery: 32},
			OnEvent: func(ev briskstream.ObsEvent) {
				if ev.Type == "obs_serving" {
					addrCh <- ev.Attrs["addr"]
				}
			},
		})
		errCh <- err
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-errCh:
		return fmt.Errorf("trace-check: run ended before serving: %v", err)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("trace-check: telemetry server never came up")
	}

	// Let traced tuples cross the whole pipeline (including at least one
	// window flush, so sink spans exist) before judging.
	time.Sleep(2 * time.Second)

	get := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		return b, nil
	}

	body, err := get("/traces")
	if err != nil {
		return fmt.Errorf("trace-check: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("trace-check: /traces is not valid JSON: %v", err)
	}
	if len(doc.Traces) == 0 {
		return fmt.Errorf("trace-check: no traces captured")
	}
	ops := map[string]bool{"src": true, "split": true, "count": true, "sink": true}
	propagated := false
	for _, tr := range doc.Traces {
		if tr.ID == 0 {
			return fmt.Errorf("trace-check: trace with zero id")
		}
		hops := map[string]bool{}
		for i, s := range tr.Spans {
			if !ops[s.Op] {
				return fmt.Errorf("trace-check: trace %d has a span on unknown operator %q", tr.ID, s.Op)
			}
			hops[s.Op] = true
			if i > 0 && s.AtNs < tr.Spans[i-1].AtNs {
				return fmt.Errorf("trace-check: trace %d hop times not monotonic", tr.ID)
			}
			if s.QueueWaitNs < 0 || s.ServiceNs < 0 {
				return fmt.Errorf("trace-check: trace %d has negative attribution", tr.ID)
			}
			if slack := int64(time.Millisecond); s.QueueWaitNs+s.ServiceNs > s.AtNs-tr.OriginNs+slack {
				return fmt.Errorf("trace-check: trace %d: queue+service %dns exceeds elapsed %dns",
					tr.ID, s.QueueWaitNs+s.ServiceNs, s.AtNs-tr.OriginNs)
			}
		}
		if hops["src"] && hops["split"] && hops["count"] {
			propagated = true
		}
	}
	if !propagated {
		return fmt.Errorf("trace-check: no trace propagated across src -> split -> count")
	}

	if doc.Analysis.Traces == 0 {
		return fmt.Errorf("trace-check: analysis covers no traces")
	}
	var attributed float64
	for _, op := range doc.Analysis.Ops {
		attributed += op.QueueNs + op.ServiceNs + op.TransferNs
	}
	mean := doc.Analysis.MeanE2eNs
	if mean <= 0 {
		return fmt.Errorf("trace-check: non-positive mean e2e %f", mean)
	}
	if diff := attributed - mean; diff > mean*0.1 || diff < -mean*0.1 {
		return fmt.Errorf("trace-check: breakdown sums to %.0fns but mean e2e is %.0fns (off by >10%%)", attributed, mean)
	}

	chrome, err := get("/traces?fmt=chrome")
	if err != nil {
		return fmt.Errorf("trace-check: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		return fmt.Errorf("trace-check: chrome output is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace-check: chrome output is empty")
	}

	if err := <-errCh; err != nil {
		return fmt.Errorf("trace-check: run failed: %v", err)
	}
	fmt.Printf("trace-check: ok (%d traces, mean e2e %.2fms, breakdown within 10%%)\n",
		len(doc.Traces), mean/1e6)
	return nil
}

// checkExposition validates a Prometheus text-format file ("-" reads
// stdin); CI uses it to judge a curl'ed /metrics body.
func checkExposition(path string) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if err := obs.ValidateExposition(data); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Printf("%s: well-formed (%d bytes)\n", path, len(data))
	return nil
}
